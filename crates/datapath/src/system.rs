//! The slot machine's view of a policy-driven switch.
//!
//! [`DatapathSystem`] merges what the offline engine's old `EngineSystem`
//! and the runtime's old `Service` each asked for: one trait serving both
//! drivers, with one adapter per packet model bridging from the
//! `smbm-core` system traits. The adapters are generic over *any*
//! implementor, so they wrap an owned runner (the runtime builds its
//! service inside the shard thread) or a `&mut` borrow (the engine drives
//! a caller-owned system) with the same code.

use smbm_core::{CombinedSystem, ValueSystem, WorkSystem};
use smbm_switch::{
    AdmitError, ArrivalOutcome, CombinedPacket, Counters, PortId, Transmitted, ValuePacket,
    WorkPacket,
};

/// What the slot machine needs from the system it drives: burst admission,
/// transmission, slot bookkeeping, flush, and the scalar gauges the
/// drivers report.
///
/// `meta` is an associated function (not a method) so callers — the
/// runtime's producers attributing value to backpressure-rejected packets,
/// the machine emitting arrival events — can carry it as a plain `fn`
/// pointer without touching the system.
pub trait DatapathSystem {
    /// The packet type flowing through the datapath. Plain data: every
    /// model's packet is `Copy` and crosses threads in the runtime's
    /// ingress rings.
    type Packet: Copy + Send + 'static;

    /// Human-readable label (the policy name) for reports.
    fn label(&self) -> String;

    /// Destination port, work cycles, and value of a packet (1 wherever the
    /// model lacks the dimension), feeding arrival events.
    fn meta(pkt: Self::Packet) -> (PortId, u32, u64);

    /// Offers one packet to admission control. The machine's arrival phase
    /// is built on this (per-packet, so observer events interleave with
    /// admission exactly as they always have, and nothing is materialized
    /// on the hot path).
    ///
    /// # Errors
    ///
    /// Surfaces an [`AdmitError`] (an inconsistent policy decision).
    fn offer(&mut self, pkt: Self::Packet) -> Result<ArrivalOutcome, AdmitError>;

    /// Offers a whole burst to admission control, appending one outcome per
    /// packet in offer order.
    ///
    /// # Errors
    ///
    /// Stops at the first [`AdmitError`] (an inconsistent policy decision);
    /// outcomes already appended stay.
    fn offer_burst(
        &mut self,
        pkts: &[Self::Packet],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError>;

    /// Runs one transmission phase, appending per-packet completion records
    /// for systems that track them; returns the phase's contribution to the
    /// objective (packets in the work model, value otherwise).
    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64;

    /// Marks the end of the slot (advances the switch clock).
    fn end_slot(&mut self);

    /// Discards all buffered packets; returns how many were discarded.
    fn flush(&mut self) -> u64;

    /// Packets currently buffered.
    fn occupancy(&self) -> usize;

    /// The objective so far: packets transmitted (work model) or value
    /// transmitted (value/combined models).
    fn score(&self) -> u64;

    /// The switch's configured shared buffer limit B (telemetry gauge; 0
    /// for systems without one, e.g. aggregate OPT surrogates).
    fn buffer_limit(&self) -> usize;

    /// The switch's configured output port count n (telemetry gauge; 0 for
    /// systems without one).
    fn ports(&self) -> usize;

    /// Length of the longest output queue right now (telemetry gauge; 0
    /// for systems that do not track per-port queues).
    fn max_queue_depth(&self) -> usize;

    /// Snapshot of the switch's lifetime counters (empty for systems that
    /// do not keep them).
    fn counters(&self) -> Counters;
}

/// Adapts a [`WorkSystem`] — throughput objective, per-port work
/// requirements — to the slot machine.
#[derive(Debug)]
pub struct WorkAdapter<S>(S);

impl<S: WorkSystem> WorkAdapter<S> {
    /// Wraps a work-model system (an owned runner or a `&mut` borrow).
    pub fn new(sys: S) -> Self {
        WorkAdapter(sys)
    }

    /// The wrapped system.
    pub fn inner(&self) -> &S {
        &self.0
    }
}

impl<S: WorkSystem> DatapathSystem for WorkAdapter<S> {
    type Packet = WorkPacket;

    fn label(&self) -> String {
        self.0.label()
    }

    fn meta(pkt: WorkPacket) -> (PortId, u32, u64) {
        (pkt.port(), pkt.work().cycles(), 1)
    }

    fn offer(&mut self, pkt: WorkPacket) -> Result<ArrivalOutcome, AdmitError> {
        self.0.offer(pkt)
    }

    fn offer_burst(
        &mut self,
        pkts: &[WorkPacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        self.0.offer_burst(pkts, outcomes)
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        self.0.transmission_phase_into(out)
    }

    fn end_slot(&mut self) {
        self.0.end_slot();
    }

    fn flush(&mut self) -> u64 {
        self.0.flush()
    }

    fn occupancy(&self) -> usize {
        self.0.occupancy()
    }

    fn score(&self) -> u64 {
        self.0.transmitted()
    }

    fn buffer_limit(&self) -> usize {
        self.0.buffer_limit()
    }

    fn ports(&self) -> usize {
        self.0.ports()
    }

    fn max_queue_depth(&self) -> usize {
        self.0.max_queue_depth()
    }

    fn counters(&self) -> Counters {
        self.0.counters()
    }
}

/// Adapts a [`ValueSystem`] — value objective, unit work — to the slot
/// machine.
#[derive(Debug)]
pub struct ValueAdapter<S>(S);

impl<S: ValueSystem> ValueAdapter<S> {
    /// Wraps a value-model system (an owned runner or a `&mut` borrow).
    pub fn new(sys: S) -> Self {
        ValueAdapter(sys)
    }

    /// The wrapped system.
    pub fn inner(&self) -> &S {
        &self.0
    }
}

impl<S: ValueSystem> DatapathSystem for ValueAdapter<S> {
    type Packet = ValuePacket;

    fn label(&self) -> String {
        self.0.label()
    }

    fn meta(pkt: ValuePacket) -> (PortId, u32, u64) {
        (pkt.port(), 1, pkt.value().get())
    }

    fn offer(&mut self, pkt: ValuePacket) -> Result<ArrivalOutcome, AdmitError> {
        self.0.offer(pkt)
    }

    fn offer_burst(
        &mut self,
        pkts: &[ValuePacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        self.0.offer_burst(pkts, outcomes)
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        self.0.transmission_phase_into(out)
    }

    fn end_slot(&mut self) {
        self.0.end_slot();
    }

    fn flush(&mut self) -> u64 {
        self.0.flush()
    }

    fn occupancy(&self) -> usize {
        self.0.occupancy()
    }

    fn score(&self) -> u64 {
        self.0.transmitted_value()
    }

    fn buffer_limit(&self) -> usize {
        self.0.buffer_limit()
    }

    fn ports(&self) -> usize {
        self.0.ports()
    }

    fn max_queue_depth(&self) -> usize {
        self.0.max_queue_depth()
    }

    fn counters(&self) -> Counters {
        self.0.counters()
    }
}

/// Adapts a [`CombinedSystem`] — value objective, per-port work
/// (extension) — to the slot machine.
#[derive(Debug)]
pub struct CombinedAdapter<S>(S);

impl<S: CombinedSystem> CombinedAdapter<S> {
    /// Wraps a combined-model system (an owned runner or a `&mut` borrow).
    pub fn new(sys: S) -> Self {
        CombinedAdapter(sys)
    }

    /// The wrapped system.
    pub fn inner(&self) -> &S {
        &self.0
    }
}

impl<S: CombinedSystem> DatapathSystem for CombinedAdapter<S> {
    type Packet = CombinedPacket;

    fn label(&self) -> String {
        self.0.label()
    }

    fn meta(pkt: CombinedPacket) -> (PortId, u32, u64) {
        (pkt.port(), pkt.work().cycles(), pkt.value().get())
    }

    fn offer(&mut self, pkt: CombinedPacket) -> Result<ArrivalOutcome, AdmitError> {
        self.0.offer(pkt)
    }

    fn offer_burst(
        &mut self,
        pkts: &[CombinedPacket],
        outcomes: &mut Vec<ArrivalOutcome>,
    ) -> Result<(), AdmitError> {
        self.0.offer_burst(pkts, outcomes)
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        self.0.transmission_phase_into(out)
    }

    fn end_slot(&mut self) {
        self.0.end_slot();
    }

    fn flush(&mut self) -> u64 {
        self.0.flush()
    }

    fn occupancy(&self) -> usize {
        self.0.occupancy()
    }

    fn score(&self) -> u64 {
        self.0.transmitted_value()
    }

    fn buffer_limit(&self) -> usize {
        self.0.buffer_limit()
    }

    fn ports(&self) -> usize {
        self.0.ports()
    }

    fn max_queue_depth(&self) -> usize {
        self.0.max_queue_depth()
    }

    fn counters(&self) -> Counters {
        self.0.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_core::{GreedyValue, Lwd, ValueRunner, WorkRunner};
    use smbm_switch::{Value, ValueSwitchConfig, Work, WorkSwitchConfig};

    #[test]
    fn work_adapter_round_trip() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut sys = WorkAdapter::new(WorkRunner::new(cfg, Lwd::new(), 1));
        assert_eq!(sys.label(), "LWD");
        let pkt = WorkPacket::new(PortId::new(0), Work::new(1));
        assert_eq!(
            WorkAdapter::<WorkRunner<Lwd>>::meta(pkt),
            (PortId::new(0), 1, 1)
        );
        let mut outcomes = Vec::new();
        sys.offer_burst(&[pkt, pkt], &mut outcomes).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(sys.occupancy(), 2);
        assert_eq!(sys.buffer_limit(), 4);
        assert_eq!(sys.ports(), 2);
        assert_eq!(sys.max_queue_depth(), 2);
        let mut out = Vec::new();
        assert_eq!(sys.transmission_phase_into(&mut out), 1);
        sys.end_slot();
        assert_eq!(sys.score(), 1);
        assert_eq!(sys.counters().transmitted(), 1);
        assert_eq!(sys.flush(), 1);
        assert_eq!(sys.occupancy(), 0);
    }

    #[test]
    fn adapters_work_over_mutable_borrows() {
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut runner = ValueRunner::new(cfg, GreedyValue::new(), 1);
        {
            let mut sys = ValueAdapter::new(&mut runner);
            let mut outcomes = Vec::new();
            sys.offer_burst(
                &[ValuePacket::new(PortId::new(0), Value::new(7))],
                &mut outcomes,
            )
            .unwrap();
            let mut out = Vec::new();
            assert_eq!(sys.transmission_phase_into(&mut out), 7);
            sys.end_slot();
            assert_eq!(sys.score(), 7);
        }
        // The borrow adapter drove the caller's runner in place.
        assert_eq!(runner.transmitted_value(), 7);
    }

    #[test]
    fn opt_surrogates_default_the_gauges() {
        let opt = smbm_core::WorkPqOpt::new(4, 2);
        let sys = WorkAdapter::new(opt);
        assert_eq!(sys.buffer_limit(), 0);
        assert_eq!(sys.ports(), 0);
        assert_eq!(sys.max_queue_depth(), 0);
        assert_eq!(sys.counters(), Counters::new());
    }
}
