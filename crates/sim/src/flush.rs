//! Periodic buffer flushouts, re-exported from `smbm-switch`.
//!
//! The types moved down to the switch crate so the live runtime
//! (`smbm-runtime`) can share the exact flush semantics without depending on
//! the simulation engine; every existing `smbm_sim::{FlushMode, FlushPolicy}`
//! path keeps working through this re-export.

pub use smbm_switch::{FlushMode, FlushPolicy};
