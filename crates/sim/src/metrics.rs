//! Report formatting: turn sweeps into the CSV series of Fig. 5.

use crate::sweep::SweepPoint;

/// A labelled series of `(x, ratio)` points, one per policy, extracted from
/// a sweep — the unit of a Fig. 5 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Policy label.
    pub label: String,
    /// `(swept parameter, competitive ratio)` pairs.
    pub points: Vec<(f64, f64)>,
}

/// Extracts one series per policy from sweep points.
pub fn series_from_sweep(points: &[SweepPoint]) -> Vec<Series> {
    let Some(first) = points.first() else {
        return Vec::new();
    };
    first
        .report
        .rows
        .iter()
        .map(|row| Series {
            label: row.policy.clone(),
            points: points
                .iter()
                .filter_map(|p| p.report.row(&row.policy).map(|r| (p.x, r.ratio)))
                .collect(),
        })
        .collect()
}

/// Renders series as CSV: a header `x,<label>,...` then one line per x.
/// Policies missing a point render an empty cell.
pub fn series_to_csv(x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(x_label);
    for s in series {
        out.push(',');
        out.push_str(&s.label);
    }
    out.push('\n');
    // Collect the union of x values in first-seen order. Sweep x values come
    // out of arithmetic (e.g. `base * step.powi(i)`), so match them within a
    // relative epsilon rather than by exact f64 equality.
    let mut xs: Vec<f64> = Vec::new();
    for s in series {
        for &(x, _) in &s.points {
            if !xs.iter().any(|&seen| close(seen, x)) {
                xs.push(x);
            }
        }
    }
    for &x in &xs {
        out.push_str(&trim_float(x));
        for s in series {
            out.push(',');
            if let Some(&(_, y)) = s.points.iter().find(|&&(px, _)| close(px, x)) {
                out.push_str(&format!("{y:.4}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Whether two swept x values denote the same grid point: equal to within a
/// relative 1e-9 (absolute near zero).
fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

/// Renders a gnuplot script that plots a CSV produced by
/// [`series_to_csv`] (one line per policy, logarithmic x for B sweeps is
/// left to the caller's taste — the script is a plain-text starting point).
pub fn series_to_gnuplot(title: &str, x_label: &str, csv_file: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str("set datafile separator \",\"\n");
    out.push_str(&format!("set title \"{title}\"\n"));
    out.push_str(&format!("set xlabel \"{x_label}\"\n"));
    out.push_str("set ylabel \"competitive ratio\"\n");
    out.push_str("set key outside right\n");
    out.push_str("set grid\n");
    out.push_str("plot \\\n");
    let lines: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                "  \"{csv_file}\" using 1:{} with linespoints title \"{}\"",
                i + 2,
                s.label
            )
        })
        .collect();
    out.push_str(&lines.join(", \\\n"));
    out.push('\n');
    out
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentReport, PolicyRow};

    fn point(x: f64, ratios: &[(&str, f64)]) -> SweepPoint {
        SweepPoint {
            x,
            report: ExperimentReport {
                opt_score: 100,
                rows: ratios
                    .iter()
                    .map(|(p, r)| PolicyRow {
                        policy: p.to_string(),
                        score: 1,
                        ratio: *r,
                        mean_latency: 0.0,
                        goodput: 1.0,
                    })
                    .collect(),
            },
        }
    }

    #[test]
    fn extracts_one_series_per_policy() {
        let points = vec![
            point(1.0, &[("LWD", 1.1), ("LQD", 1.5)]),
            point(2.0, &[("LWD", 1.2), ("LQD", 1.9)]),
        ];
        let series = series_from_sweep(&points);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].label, "LWD");
        assert_eq!(series[0].points, vec![(1.0, 1.1), (2.0, 1.2)]);
    }

    #[test]
    fn empty_sweep_gives_no_series() {
        assert!(series_from_sweep(&[]).is_empty());
    }

    #[test]
    fn csv_layout() {
        let points = vec![point(1.0, &[("A", 1.0)]), point(2.5, &[("A", 2.0)])];
        let csv = series_to_csv("k", &series_from_sweep(&points));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "k,A");
        assert_eq!(lines[1], "1,1.0000");
        assert_eq!(lines[2], "2.5,2.0000");
    }

    #[test]
    fn gnuplot_script_references_every_series() {
        let series = vec![
            Series {
                label: "LWD".into(),
                points: vec![(1.0, 1.0)],
            },
            Series {
                label: "LQD".into(),
                points: vec![(1.0, 1.2)],
            },
        ];
        let gp = series_to_gnuplot("panel", "k", "p1.csv", &series);
        assert!(gp.contains("using 1:2 with linespoints title \"LWD\""));
        assert!(gp.contains("using 1:3 with linespoints title \"LQD\""));
        assert!(gp.contains("set xlabel \"k\""));
    }

    #[test]
    fn csv_merges_nearly_equal_x_values() {
        // 0.1 + 0.2 != 0.3 exactly; the columns must still line up.
        let series = vec![
            Series {
                label: "A".into(),
                points: vec![(0.3, 1.0)],
            },
            Series {
                label: "B".into(),
                points: vec![(0.1 + 0.2, 2.0)],
            },
        ];
        let csv = series_to_csv("x", &series);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2, "one merged row expected:\n{csv}");
        assert_eq!(lines[1], "0.3,1.0000,2.0000");
    }

    #[test]
    fn csv_handles_missing_points() {
        let series = vec![
            Series {
                label: "A".into(),
                points: vec![(1.0, 1.0)],
            },
            Series {
                label: "B".into(),
                points: vec![(2.0, 3.0)],
            },
        ];
        let csv = series_to_csv("x", &series);
        assert!(csv.contains("1,1.0000,\n"));
        assert!(csv.contains("2,,3.0000\n"));
    }
}
