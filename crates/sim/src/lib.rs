//! # smbm-sim
//!
//! Simulation engine and experiment harness for the shared-memory
//! buffer-management reproduction:
//!
//! * [`run_work`] / [`run_value`] — the two-phase slot loop over a trace,
//!   with the paper's periodic flushouts ([`FlushPolicy`]) and optional
//!   final drain;
//! * [`WorkExperiment`] / [`ValueExperiment`] — a policy roster compared
//!   against the paper's single-PQ OPT surrogate on one trace;
//! * [`measure_work_construction`] / [`measure_value_construction`] —
//!   replay a theorem's adversarial trace: target policy vs. the proof's
//!   scripted OPT;
//! * [`sweep`] — parallel parameter sweeps, and [`series_to_csv`] to render
//!   the Fig. 5 panels.
//!
//! ## Example
//!
//! ```
//! use smbm_sim::{run_work, EngineConfig};
//! use smbm_core::{GreedyWork, WorkRunner};
//! use smbm_switch::{PortId, Work, WorkPacket, WorkSwitchConfig};
//! use smbm_traffic::Trace;
//!
//! let cfg = WorkSwitchConfig::contiguous(2, 4)?;
//! let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
//! let mut trace = Trace::new();
//! trace.push_slot(vec![WorkPacket::new(PortId::new(0), Work::new(1))]);
//! let summary = run_work(&mut sys, &trace, &EngineConfig::draining())?;
//! assert_eq!(summary.score, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod experiment;
mod fairness;
mod flush;
mod metrics;
mod sweep;

pub use engine::{
    run_combined, run_combined_observed, run_value, run_value_observed, run_work,
    run_work_observed, EngineConfig, RunSummary,
};
pub use experiment::{
    measure_value_construction, measure_work_construction, CombinedExperiment, ConstructionReport,
    ExperimentError, ExperimentReport, PolicyRow, ValueExperiment, WorkExperiment,
};
pub use fairness::{jain_index, max_port_share};
pub use flush::{FlushMode, FlushPolicy};
pub use metrics::{series_from_sweep, series_to_csv, series_to_gnuplot, Series};
pub use sweep::{sweep, sweep_with_jobs, SweepPoint};
