//! Per-port fairness metrics.
//!
//! The paper motivates shared-memory buffer management with the tension
//! between *complete sharing* (full utilization, but "a single output port
//! may monopolize the shared memory") and *complete partitioning* (fair, but
//! underutilized). These metrics quantify that tension for any run.

/// Jain's fairness index over per-port throughputs:
/// `(Σx)² / (n · Σx²)` — 1 when perfectly fair, `1/n` when one port
/// monopolizes. Empty or all-zero inputs yield 1 (vacuously fair).
///
/// ```
/// use smbm_sim::jain_index;
/// assert_eq!(jain_index(&[5, 5, 5, 5]), 1.0);
/// assert_eq!(jain_index(&[8, 0, 0, 0]), 0.25);
/// ```
pub fn jain_index(per_port: &[u64]) -> f64 {
    let n = per_port.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = per_port.iter().map(|&x| x as f64).sum();
    if sum == 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = per_port.iter().map(|&x| (x as f64) * (x as f64)).sum();
    (sum * sum) / (n as f64 * sum_sq)
}

/// The largest single port's share of the total throughput (`1/n` when
/// perfectly balanced, 1 under monopoly). Empty or all-zero inputs yield 0.
///
/// ```
/// use smbm_sim::max_port_share;
/// assert_eq!(max_port_share(&[1, 1, 2]), 0.5);
/// ```
pub fn max_port_share(per_port: &[u64]) -> f64 {
    let sum: u64 = per_port.iter().sum();
    if sum == 0 {
        return 0.0;
    }
    let max = per_port.iter().copied().max().unwrap_or(0);
    max as f64 / sum as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfectly_fair() {
        assert_eq!(jain_index(&[3, 3, 3]), 1.0);
        assert_eq!(jain_index(&[7]), 1.0);
    }

    #[test]
    fn jain_monopoly_is_one_over_n() {
        let j = jain_index(&[10, 0, 0, 0, 0]);
        assert!((j - 0.2).abs() < 1e-12);
    }

    #[test]
    fn jain_intermediate() {
        // Known value: x = [4, 2]: (6)^2 / (2 * 20) = 36/40 = 0.9.
        assert!((jain_index(&[4, 2]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0]), 1.0);
    }

    #[test]
    fn jain_scale_invariant() {
        let a = jain_index(&[1, 2, 3]);
        let b = jain_index(&[10, 20, 30]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn max_share_cases() {
        assert_eq!(max_port_share(&[]), 0.0);
        assert_eq!(max_port_share(&[0, 0]), 0.0);
        assert_eq!(max_port_share(&[5, 5]), 0.5);
        assert_eq!(max_port_share(&[9, 1]), 0.9);
    }
}
