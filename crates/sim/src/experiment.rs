//! Experiments: run a roster of policies plus the OPT surrogate over one
//! trace and report empirical competitive ratios.

use smbm_core::{
    combined_policy_by_name, value_policy_by_name, work_policy_by_name, CappedValue, CappedWork,
    CombinedPqOpt, CombinedRunner, CompetitiveRatio, ValuePqOpt, ValueRunner, WorkPqOpt,
    WorkRunner,
};
use smbm_switch::{
    AdmitError, CombinedPacket, ValuePacket, ValueSwitchConfig, WorkPacket, WorkSwitchConfig,
};
use smbm_traffic::adversarial::{ValueConstruction, WorkConstruction};
use smbm_traffic::Trace;

use smbm_obs::{NullObserver, Observer};

use crate::engine::{
    run_combined, run_combined_observed, run_value, run_value_observed, run_work,
    run_work_observed, EngineConfig,
};

/// One policy's outcome on a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Policy name (registry key).
    pub policy: String,
    /// Objective score: packets (work model) or value (value model).
    pub score: u64,
    /// Empirical competitive ratio against the experiment's OPT reference.
    pub ratio: f64,
    /// Mean sojourn time of transmitted packets, in slots.
    pub mean_latency: f64,
    /// Fraction of offered packets eventually transmitted.
    pub goodput: f64,
}

/// Result of running a roster of policies against the OPT surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// OPT surrogate's score.
    pub opt_score: u64,
    /// Per-policy outcomes, in roster order.
    pub rows: Vec<PolicyRow>,
}

impl ExperimentReport {
    /// The row for `policy`, if it was in the roster.
    pub fn row(&self, policy: &str) -> Option<&PolicyRow> {
        self.rows.iter().find(|r| r.policy == policy)
    }
}

/// Error running an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// A roster entry is not in the policy registry.
    UnknownPolicy(String),
    /// A policy made a decision the switch rejected.
    Admit(AdmitError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::UnknownPolicy(p) => write!(f, "unknown policy {p:?}"),
            ExperimentError::Admit(e) => write!(f, "policy decision rejected: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<AdmitError> for ExperimentError {
    fn from(e: AdmitError) -> Self {
        ExperimentError::Admit(e)
    }
}

/// A work-model experiment: a switch configuration, a speedup, and a roster
/// of policies compared against the paper's single-PQ OPT surrogate with
/// `ports * speedup` cores.
#[derive(Debug, Clone)]
pub struct WorkExperiment {
    /// Switch configuration shared by every contender.
    pub config: WorkSwitchConfig,
    /// Cores per queue (`C` in Fig. 5).
    pub speedup: u32,
    /// Policy roster (registry keys).
    pub policies: Vec<String>,
    /// Engine settings (flushouts, final drain).
    pub engine: EngineConfig,
}

impl WorkExperiment {
    /// Creates an experiment with the paper's full work-model roster.
    pub fn full_roster(config: WorkSwitchConfig, speedup: u32) -> Self {
        WorkExperiment {
            config,
            speedup,
            policies: smbm_core::WORK_POLICY_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            engine: EngineConfig::draining(),
        }
    }

    /// Runs every policy and the OPT surrogate over `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for unknown roster entries or invalid
    /// policy decisions.
    pub fn run(&self, trace: &Trace<WorkPacket>) -> Result<ExperimentReport, ExperimentError> {
        let mut nulls = vec![NullObserver; self.policies.len()];
        self.run_observed(trace, &mut nulls)
    }

    /// Like [`WorkExperiment::run`], attaching `observers[i]` to the run of
    /// `policies[i]` (the OPT surrogate is never instrumented — it is the
    /// yardstick, not the subject). Observation does not change scores.
    ///
    /// # Panics
    ///
    /// Panics if `observers` and the roster differ in length.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for unknown roster entries or invalid
    /// policy decisions.
    pub fn run_observed<O: Observer>(
        &self,
        trace: &Trace<WorkPacket>,
        observers: &mut [O],
    ) -> Result<ExperimentReport, ExperimentError> {
        assert_eq!(
            observers.len(),
            self.policies.len(),
            "one observer per roster policy"
        );
        let cores = self.config.ports() as u32 * self.speedup;
        let mut opt = WorkPqOpt::new(self.config.buffer(), cores);
        let opt_score = run_work(&mut opt, trace, &self.engine)?.score;
        let mut rows = Vec::with_capacity(self.policies.len());
        for (name, obs) in self.policies.iter().zip(observers.iter_mut()) {
            let policy = work_policy_by_name(name)
                .ok_or_else(|| ExperimentError::UnknownPolicy(name.clone()))?;
            let mut runner = WorkRunner::new(self.config.clone(), policy, self.speedup);
            let score = run_work_observed(&mut runner, trace, &self.engine, obs)?.score;
            let counters = runner.switch().counters();
            rows.push(PolicyRow {
                policy: name.clone(),
                score,
                ratio: CompetitiveRatio::new(opt_score, score).ratio(),
                mean_latency: counters.mean_latency(),
                goodput: counters.goodput(),
            });
        }
        Ok(ExperimentReport { opt_score, rows })
    }
}

/// A value-model experiment, mirroring [`WorkExperiment`].
#[derive(Debug, Clone)]
pub struct ValueExperiment {
    /// Switch configuration shared by every contender.
    pub config: ValueSwitchConfig,
    /// Packets each port transmits per slot (`C` in Fig. 5).
    pub speedup: u32,
    /// Policy roster (registry keys).
    pub policies: Vec<String>,
    /// Engine settings (flushouts, final drain).
    pub engine: EngineConfig,
}

impl ValueExperiment {
    /// Creates an experiment with the paper's full value-model roster.
    pub fn full_roster(config: ValueSwitchConfig, speedup: u32) -> Self {
        ValueExperiment {
            config,
            speedup,
            policies: smbm_core::VALUE_POLICY_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            engine: EngineConfig::draining(),
        }
    }

    /// Runs every policy and the OPT surrogate over `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for unknown roster entries or invalid
    /// policy decisions.
    pub fn run(&self, trace: &Trace<ValuePacket>) -> Result<ExperimentReport, ExperimentError> {
        let mut nulls = vec![NullObserver; self.policies.len()];
        self.run_observed(trace, &mut nulls)
    }

    /// Like [`ValueExperiment::run`], attaching `observers[i]` to the run of
    /// `policies[i]`; see [`WorkExperiment::run_observed`].
    ///
    /// # Panics
    ///
    /// Panics if `observers` and the roster differ in length.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for unknown roster entries or invalid
    /// policy decisions.
    pub fn run_observed<O: Observer>(
        &self,
        trace: &Trace<ValuePacket>,
        observers: &mut [O],
    ) -> Result<ExperimentReport, ExperimentError> {
        assert_eq!(
            observers.len(),
            self.policies.len(),
            "one observer per roster policy"
        );
        let cores = self.config.ports() as u32 * self.speedup;
        let mut opt = ValuePqOpt::new(self.config.buffer(), cores);
        let opt_score = run_value(&mut opt, trace, &self.engine)?.score;
        let mut rows = Vec::with_capacity(self.policies.len());
        for (name, obs) in self.policies.iter().zip(observers.iter_mut()) {
            let policy = value_policy_by_name(name)
                .ok_or_else(|| ExperimentError::UnknownPolicy(name.clone()))?;
            let mut runner = ValueRunner::new(self.config, policy, self.speedup);
            let score = run_value_observed(&mut runner, trace, &self.engine, obs)?.score;
            let counters = runner.switch().counters();
            rows.push(PolicyRow {
                policy: name.clone(),
                score,
                ratio: CompetitiveRatio::new(opt_score, score).ratio(),
                mean_latency: counters.mean_latency(),
                goodput: counters.goodput(),
            });
        }
        Ok(ExperimentReport { opt_score, rows })
    }
}

/// A combined-model experiment (extension), mirroring [`WorkExperiment`]:
/// roster versus the density-greedy OPT surrogate.
#[derive(Debug, Clone)]
pub struct CombinedExperiment {
    /// Switch configuration (buffer + per-port works) shared by every
    /// contender.
    pub config: WorkSwitchConfig,
    /// Cores per queue.
    pub speedup: u32,
    /// Policy roster (combined registry keys).
    pub policies: Vec<String>,
    /// Engine settings.
    pub engine: EngineConfig,
}

impl CombinedExperiment {
    /// Creates an experiment with the full combined-model roster.
    pub fn full_roster(config: WorkSwitchConfig, speedup: u32) -> Self {
        CombinedExperiment {
            config,
            speedup,
            policies: smbm_core::COMBINED_POLICY_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            engine: EngineConfig::draining(),
        }
    }

    /// Runs every policy and the density OPT surrogate over `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for unknown roster entries or invalid
    /// policy decisions.
    pub fn run(&self, trace: &Trace<CombinedPacket>) -> Result<ExperimentReport, ExperimentError> {
        let mut nulls = vec![NullObserver; self.policies.len()];
        self.run_observed(trace, &mut nulls)
    }

    /// Like [`CombinedExperiment::run`], attaching `observers[i]` to the run
    /// of `policies[i]`; see [`WorkExperiment::run_observed`].
    ///
    /// # Panics
    ///
    /// Panics if `observers` and the roster differ in length.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for unknown roster entries or invalid
    /// policy decisions.
    pub fn run_observed<O: Observer>(
        &self,
        trace: &Trace<CombinedPacket>,
        observers: &mut [O],
    ) -> Result<ExperimentReport, ExperimentError> {
        assert_eq!(
            observers.len(),
            self.policies.len(),
            "one observer per roster policy"
        );
        let cores = self.config.ports() as u32 * self.speedup;
        let mut opt = CombinedPqOpt::new(self.config.buffer(), cores);
        let opt_score = run_combined(&mut opt, trace, &self.engine)?.score;
        let mut rows = Vec::with_capacity(self.policies.len());
        for (name, obs) in self.policies.iter().zip(observers.iter_mut()) {
            let policy = combined_policy_by_name(name)
                .ok_or_else(|| ExperimentError::UnknownPolicy(name.clone()))?;
            let mut runner = CombinedRunner::new(self.config.clone(), policy, self.speedup);
            let score = run_combined_observed(&mut runner, trace, &self.engine, obs)?.score;
            let counters = runner.switch().counters();
            rows.push(PolicyRow {
                policy: name.clone(),
                score,
                ratio: CompetitiveRatio::new(opt_score, score).ratio(),
                mean_latency: counters.mean_latency(),
                goodput: counters.goodput(),
            });
        }
        Ok(ExperimentReport { opt_score, rows })
    }
}

/// Outcome of replaying a theorem's adversarial construction.
#[derive(Debug, Clone)]
pub struct ConstructionReport {
    /// The construction's name (theorem + parameters).
    pub name: String,
    /// The targeted policy.
    pub policy: String,
    /// Ratio of the scripted OPT's score to the policy's score.
    pub measured: CompetitiveRatio,
    /// The theorem's bound at these parameters.
    pub predicted: f64,
}

impl ConstructionReport {
    /// The measured competitive ratio.
    pub fn ratio(&self) -> f64 {
        self.measured.ratio()
    }
}

/// Replays a work-model lower-bound construction: the target policy versus
/// the proof's scripted OPT (per-queue caps), over the same trace, counting
/// only in-horizon transmissions (no final drain — the constructions are
/// built to leave the policy clogged).
///
/// # Errors
///
/// Returns [`ExperimentError`] for unknown target policies or invalid
/// decisions.
pub fn measure_work_construction(
    c: &WorkConstruction,
) -> Result<ConstructionReport, ExperimentError> {
    let engine = EngineConfig::horizon_only();
    let policy = work_policy_by_name(c.target_policy)
        .ok_or_else(|| ExperimentError::UnknownPolicy(c.target_policy.to_string()))?;
    let mut alg = WorkRunner::new(c.config.clone(), policy, 1);
    let alg_score = run_work(&mut alg, &c.trace, &engine)?.score;
    let mut opt = WorkRunner::new(c.config.clone(), CappedWork::new(c.opt_caps.clone()), 1);
    let opt_score = run_work(&mut opt, &c.trace, &engine)?.score;
    Ok(ConstructionReport {
        name: c.name.clone(),
        policy: c.target_policy.to_string(),
        measured: CompetitiveRatio::new(opt_score, alg_score),
        predicted: c.predicted_ratio,
    })
}

/// Replays a value-model lower-bound construction; see
/// [`measure_work_construction`].
///
/// # Errors
///
/// Returns [`ExperimentError`] for unknown target policies or invalid
/// decisions.
pub fn measure_value_construction(
    c: &ValueConstruction,
) -> Result<ConstructionReport, ExperimentError> {
    let engine = EngineConfig::horizon_only();
    let policy = value_policy_by_name(c.target_policy)
        .ok_or_else(|| ExperimentError::UnknownPolicy(c.target_policy.to_string()))?;
    let mut alg = ValueRunner::new(c.config, policy, 1);
    let alg_score = run_value(&mut alg, &c.trace, &engine)?.score;
    let mut opt = ValueRunner::new(c.config, CappedValue::new(c.opt_caps.clone()), 1);
    let opt_score = run_value(&mut opt, &c.trace, &engine)?.score;
    Ok(ConstructionReport {
        name: c.name.clone(),
        policy: c.target_policy.to_string(),
        measured: CompetitiveRatio::new(opt_score, alg_score),
        predicted: c.predicted_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_switch::{PortId, Work};

    #[test]
    fn work_experiment_ranks_policies() {
        let config = WorkSwitchConfig::contiguous(3, 9).unwrap();
        let exp = WorkExperiment::full_roster(config.clone(), 1);
        let mut trace = Trace::new();
        // A congested burst toward the heavy port plus cheap traffic.
        for _ in 0..5 {
            let mut burst = Vec::new();
            for _ in 0..6 {
                burst.push(WorkPacket::new(PortId::new(2), Work::new(3)));
            }
            for _ in 0..6 {
                burst.push(WorkPacket::new(PortId::new(0), Work::new(1)));
            }
            trace.push_slot(burst);
        }
        let report = exp.run(&trace).unwrap();
        assert_eq!(report.rows.len(), smbm_core::WORK_POLICY_NAMES.len());
        assert!(report.opt_score > 0);
        for row in &report.rows {
            assert!(row.score > 0, "{} scored zero", row.policy);
            assert!(row.ratio >= 0.9, "{} ratio {}", row.policy, row.ratio);
        }
        assert!(report.row("LWD").is_some());
        assert!(report.row("nope").is_none());
    }

    #[test]
    fn unknown_policy_is_reported() {
        let config = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut exp = WorkExperiment::full_roster(config, 1);
        exp.policies.push("BOGUS".into());
        let trace = Trace::from_slots(vec![vec![]]);
        let err = exp.run(&trace).unwrap_err();
        assert_eq!(err, ExperimentError::UnknownPolicy("BOGUS".into()));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn value_experiment_runs_roster() {
        let config = ValueSwitchConfig::new(8, 4).unwrap();
        let exp = ValueExperiment::full_roster(config, 1);
        let mut trace = Trace::new();
        for _ in 0..4 {
            let burst: Vec<ValuePacket> = (0..8)
                .map(|i| {
                    ValuePacket::new(
                        PortId::new(i % 4),
                        smbm_switch::Value::new((i % 4) as u64 + 1),
                    )
                })
                .collect();
            trace.push_slot(burst);
        }
        let report = exp.run(&trace).unwrap();
        assert_eq!(report.rows.len(), smbm_core::VALUE_POLICY_NAMES.len());
        for row in &report.rows {
            assert!(row.score > 0, "{} scored zero", row.policy);
        }
    }

    #[test]
    fn combined_experiment_runs_roster() {
        use smbm_switch::{Value, Work};
        let config = WorkSwitchConfig::contiguous(3, 9).unwrap();
        let exp = CombinedExperiment::full_roster(config.clone(), 1);
        let mut trace = Trace::new();
        for _ in 0..4 {
            let burst: Vec<CombinedPacket> = (0..6)
                .map(|i| {
                    let p = PortId::new(i % 3);
                    CombinedPacket::new(p, config.work(p), Value::new((i % 4) as u64 + 1))
                })
                .collect();
            trace.push_slot(burst);
        }
        let _ = Work::new(1); // keep import used in both cfg layouts
        let report = exp.run(&trace).unwrap();
        assert_eq!(report.rows.len(), smbm_core::COMBINED_POLICY_NAMES.len());
        for row in &report.rows {
            assert!(row.score > 0, "{} scored zero", row.policy);
        }
        assert!(report.row("WVD").is_some());
    }

    #[test]
    fn construction_measurement_runs() {
        let c = smbm_traffic::adversarial::bpd_lower_bound(4, 16, 200);
        let r = measure_work_construction(&c).unwrap();
        assert!(r.ratio() > 1.0, "BPD should lose: {}", r.ratio());
        assert!(r.predicted > 1.0);
        assert_eq!(r.policy, "BPD");
    }

    #[test]
    fn value_construction_measurement_runs() {
        let c = smbm_traffic::adversarial::mvd_lower_bound(4, 16, 200);
        let r = measure_value_construction(&c).unwrap();
        assert!(r.ratio() > 1.0, "MVD should lose: {}", r.ratio());
    }
}
