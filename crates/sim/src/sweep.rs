//! Parameter sweeps over experiments, parallelised across points with
//! scoped threads.

use std::sync::Mutex;

use crate::experiment::{ExperimentError, ExperimentReport};

/// One point of a sweep: the swept parameter's value and the experiment
/// report measured there.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter (k, B, or C in Fig. 5).
    pub x: f64,
    /// The report at this point.
    pub report: ExperimentReport,
}

/// Runs `measure` at every `x`, in parallel, returning points in input
/// order. `measure` builds and runs a full experiment for one parameter
/// value; any error aborts the sweep.
///
/// # Errors
///
/// Returns the first [`ExperimentError`] any point produced.
///
/// ```
/// use smbm_sim::sweep;
/// use smbm_sim::{ExperimentReport};
///
/// let points = sweep(&[1.0, 2.0], |x| {
///     Ok(ExperimentReport { opt_score: x as u64, rows: vec![] })
/// })?;
/// assert_eq!(points.len(), 2);
/// assert_eq!(points[1].report.opt_score, 2);
/// # Ok::<(), smbm_sim::ExperimentError>(())
/// ```
pub fn sweep<F>(xs: &[f64], measure: F) -> Result<Vec<SweepPoint>, ExperimentError>
where
    F: Fn(f64) -> Result<ExperimentReport, ExperimentError> + Sync,
{
    sweep_with_jobs(xs, measure, None)
}

/// Like [`sweep`], with an explicit worker-thread cap. `jobs = None` uses
/// the machine's available parallelism; `Some(n)` caps the pool at `n`
/// threads (`Some(1)` runs the sweep sequentially on one worker, useful for
/// reproducible timing or constrained CI runners). The cap is clamped to at
/// least one thread and at most one per sweep point.
///
/// # Errors
///
/// Returns the first [`ExperimentError`] any point produced.
pub fn sweep_with_jobs<F>(
    xs: &[f64],
    measure: F,
    jobs: Option<usize>,
) -> Result<Vec<SweepPoint>, ExperimentError>
where
    F: Fn(f64) -> Result<ExperimentReport, ExperimentError> + Sync,
{
    let threads = jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(xs.len().max(1));
    let results: Mutex<Vec<Option<Result<ExperimentReport, ExperimentError>>>> =
        Mutex::new((0..xs.len()).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= xs.len() {
                    break;
                }
                let r = measure(xs[i]);
                results.lock().expect("no panics hold the lock")[i] = Some(r);
            });
        }
    });
    let results = results.into_inner().expect("threads joined");
    let mut points = Vec::with_capacity(xs.len());
    for (i, r) in results.into_iter().enumerate() {
        let report = r.expect("every index was visited")?;
        points.push(SweepPoint { x: xs[i], report });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PolicyRow;

    fn fake_report(x: f64) -> ExperimentReport {
        ExperimentReport {
            opt_score: (x * 10.0) as u64,
            rows: vec![PolicyRow {
                policy: "X".into(),
                score: x as u64,
                ratio: 1.0,
                mean_latency: 0.0,
                goodput: 1.0,
            }],
        }
    }

    #[test]
    fn preserves_input_order() {
        let xs: Vec<f64> = (1..=20).map(f64::from).collect();
        let points = sweep(&xs, |x| Ok(fake_report(x))).unwrap();
        assert_eq!(points.len(), 20);
        for (p, x) in points.iter().zip(&xs) {
            assert_eq!(p.x, *x);
            assert_eq!(p.report.opt_score, (*x * 10.0) as u64);
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        let points = sweep(&[], |x| Ok(fake_report(x))).unwrap();
        assert!(points.is_empty());
    }

    #[test]
    fn explicit_job_counts_match_default() {
        let xs: Vec<f64> = (1..=9).map(f64::from).collect();
        let default = sweep(&xs, |x| Ok(fake_report(x))).unwrap();
        for jobs in [1, 2, 64] {
            let capped = sweep_with_jobs(&xs, |x| Ok(fake_report(x)), Some(jobs)).unwrap();
            assert_eq!(capped.len(), default.len());
            for (a, b) in capped.iter().zip(&default) {
                assert_eq!(a.x, b.x);
                assert_eq!(a.report.opt_score, b.report.opt_score);
            }
        }
        // jobs = 0 is clamped to one worker rather than deadlocking.
        let clamped = sweep_with_jobs(&xs, |x| Ok(fake_report(x)), Some(0)).unwrap();
        assert_eq!(clamped.len(), xs.len());
    }

    #[test]
    fn errors_abort() {
        let r = sweep(&[1.0, 2.0], |x| {
            if x > 1.5 {
                Err(ExperimentError::UnknownPolicy("boom".into()))
            } else {
                Ok(fake_report(x))
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn actually_runs_in_parallel_threads() {
        // Smoke test: heavy closure across many points completes.
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let points = sweep(&xs, |x| {
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc = acc.wrapping_add(i * x as u64);
            }
            let mut r = fake_report(x);
            r.opt_score = acc.max(1);
            Ok(r)
        })
        .unwrap();
        assert_eq!(points.len(), 50);
    }
}
