//! The two-phase slot loop: drives any [`WorkSystem`]/[`ValueSystem`]
//! through an arrival trace, with the paper's periodic flushouts.

use smbm_core::{CombinedSystem, ValueSystem, WorkSystem};
use smbm_switch::{AdmitError, CombinedPacket, ValuePacket, WorkPacket};
use smbm_traffic::Trace;

use crate::{FlushMode, FlushPolicy};

/// Engine knobs shared by both models.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Periodic flushouts, as in the paper's simulations (`None` disables).
    pub flush: Option<FlushPolicy>,
    /// Whether to keep running arrival-free slots after the trace until the
    /// buffer empties, so every admitted packet is counted. The theorem
    /// traces set this to `false` (stuck heavy packets are the point);
    /// MMPP experiments set it to `true`.
    pub drain_at_end: bool,
}

impl EngineConfig {
    /// No flushouts, final drain enabled: the default for statistical runs.
    pub fn draining() -> Self {
        EngineConfig {
            flush: None,
            drain_at_end: true,
        }
    }

    /// No flushouts, no final drain: the setting for theorem traces.
    pub fn horizon_only() -> Self {
        EngineConfig {
            flush: None,
            drain_at_end: false,
        }
    }
}

/// Summary of one system's run over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Slots executed, including drain slots.
    pub slots: u64,
    /// Final objective value: packets transmitted (work model) or total
    /// value transmitted (value model).
    pub score: u64,
    /// Mean buffer occupancy sampled at the end of every slot.
    pub mean_occupancy: f64,
    /// Peak buffer occupancy sampled at the end of any slot.
    pub max_occupancy: usize,
}

/// Hard cap on drain slots, guarding against a non-work-conserving system
/// looping forever.
const MAX_DRAIN_SLOTS: u64 = 100_000_000;

/// Runs a work-model system over `trace`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_work<S: WorkSystem + ?Sized>(
    sys: &mut S,
    trace: &Trace<WorkPacket>,
    engine: &EngineConfig,
) -> Result<RunSummary, AdmitError> {
    let mut slots = 0u64;
    let mut occ_sum = 0u64;
    let mut occ_max = 0usize;
    for (i, burst) in trace.iter().enumerate() {
        if let Some(flush) = &engine.flush {
            if flush.due(i as u64) {
                match flush.mode {
                    FlushMode::Drop => sys.flush(),
                    FlushMode::Drain => {
                        let mut guard = 0u64;
                        while sys.occupancy() > 0 {
                            sys.transmission_phase();
                            sys.end_slot();
                            slots += 1;
                            guard += 1;
                            assert!(guard < MAX_DRAIN_SLOTS, "drain did not terminate");
                        }
                    }
                }
            }
        }
        for &pkt in burst {
            sys.offer(pkt)?;
        }
        sys.transmission_phase();
        sys.end_slot();
        slots += 1;
        occ_sum += sys.occupancy() as u64;
        occ_max = occ_max.max(sys.occupancy());
    }
    if engine.drain_at_end {
        let mut guard = 0u64;
        while sys.occupancy() > 0 {
            sys.transmission_phase();
            sys.end_slot();
            slots += 1;
            occ_sum += sys.occupancy() as u64;
            guard += 1;
            assert!(guard < MAX_DRAIN_SLOTS, "final drain did not terminate");
        }
    }
    Ok(RunSummary {
        slots,
        score: sys.transmitted(),
        mean_occupancy: if slots == 0 { 0.0 } else { occ_sum as f64 / slots as f64 },
        max_occupancy: occ_max,
    })
}

/// Runs a value-model system over `trace`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_value<S: ValueSystem + ?Sized>(
    sys: &mut S,
    trace: &Trace<ValuePacket>,
    engine: &EngineConfig,
) -> Result<RunSummary, AdmitError> {
    let mut slots = 0u64;
    let mut occ_sum = 0u64;
    let mut occ_max = 0usize;
    for (i, burst) in trace.iter().enumerate() {
        if let Some(flush) = &engine.flush {
            if flush.due(i as u64) {
                match flush.mode {
                    FlushMode::Drop => sys.flush(),
                    FlushMode::Drain => {
                        let mut guard = 0u64;
                        while sys.occupancy() > 0 {
                            sys.transmission_phase();
                            sys.end_slot();
                            slots += 1;
                            guard += 1;
                            assert!(guard < MAX_DRAIN_SLOTS, "drain did not terminate");
                        }
                    }
                }
            }
        }
        for &pkt in burst {
            sys.offer(pkt)?;
        }
        sys.transmission_phase();
        sys.end_slot();
        slots += 1;
        occ_sum += sys.occupancy() as u64;
        occ_max = occ_max.max(sys.occupancy());
    }
    if engine.drain_at_end {
        let mut guard = 0u64;
        while sys.occupancy() > 0 {
            sys.transmission_phase();
            sys.end_slot();
            slots += 1;
            occ_sum += sys.occupancy() as u64;
            guard += 1;
            assert!(guard < MAX_DRAIN_SLOTS, "final drain did not terminate");
        }
    }
    Ok(RunSummary {
        slots,
        score: sys.transmitted_value(),
        mean_occupancy: if slots == 0 { 0.0 } else { occ_sum as f64 / slots as f64 },
        max_occupancy: occ_max,
    })
}

/// Runs a combined-model system over `trace` (extension).
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_combined<S: CombinedSystem + ?Sized>(
    sys: &mut S,
    trace: &Trace<CombinedPacket>,
    engine: &EngineConfig,
) -> Result<RunSummary, AdmitError> {
    let mut slots = 0u64;
    let mut occ_sum = 0u64;
    let mut occ_max = 0usize;
    for (i, burst) in trace.iter().enumerate() {
        if let Some(flush) = &engine.flush {
            if flush.due(i as u64) {
                match flush.mode {
                    FlushMode::Drop => sys.flush(),
                    FlushMode::Drain => {
                        let mut guard = 0u64;
                        while sys.occupancy() > 0 {
                            sys.transmission_phase();
                            sys.end_slot();
                            slots += 1;
                            guard += 1;
                            assert!(guard < MAX_DRAIN_SLOTS, "drain did not terminate");
                        }
                    }
                }
            }
        }
        for &pkt in burst {
            sys.offer(pkt)?;
        }
        sys.transmission_phase();
        sys.end_slot();
        slots += 1;
        occ_sum += sys.occupancy() as u64;
        occ_max = occ_max.max(sys.occupancy());
    }
    if engine.drain_at_end {
        let mut guard = 0u64;
        while sys.occupancy() > 0 {
            sys.transmission_phase();
            sys.end_slot();
            slots += 1;
            occ_sum += sys.occupancy() as u64;
            guard += 1;
            assert!(guard < MAX_DRAIN_SLOTS, "final drain did not terminate");
        }
    }
    Ok(RunSummary {
        slots,
        score: sys.transmitted_value(),
        mean_occupancy: if slots == 0 { 0.0 } else { occ_sum as f64 / slots as f64 },
        max_occupancy: occ_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_core::{GreedyValue, GreedyWork, ValueRunner, WorkRunner};
    use smbm_switch::{PortId, Value, Work, WorkSwitchConfig, ValueSwitchConfig};

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    fn vp(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    #[test]
    fn run_work_counts_transmissions() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1), wp(1, 2)]);
        trace.push_silence(2);
        let s = run_work(&mut sys, &trace, &EngineConfig::horizon_only()).unwrap();
        assert_eq!(s.slots, 3);
        assert_eq!(s.score, 2); // 1-cycle done slot 0, 2-cycle done slot 1
    }

    #[test]
    fn final_drain_counts_resident_packets() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 5]);
        let horizon = run_work(
            &mut sys,
            &trace,
            &EngineConfig::horizon_only(),
        )
        .unwrap();
        assert_eq!(horizon.score, 1);

        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let drained = run_work(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(drained.score, 5);
        assert_eq!(drained.slots, 5); // 1 trace slot + 4 drain slots
    }

    #[test]
    fn flush_drop_discards_backlog() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 6]);
        trace.push_silence(3); // slots 1..3
        trace.push_slot(vec![wp(0, 1)]); // slot 4, right at flush boundary
        let engine = EngineConfig {
            flush: Some(FlushPolicy {
                period: 4,
                mode: FlushMode::Drop,
            }),
            drain_at_end: false,
        };
        let s = run_work(&mut sys, &trace, &engine).unwrap();
        // Slots 0-3 transmit 4; flush at slot 4 drops the remaining 2, the
        // new arrival transmits at slot 4.
        assert_eq!(s.score, 5);
    }

    #[test]
    fn flush_drain_pauses_arrivals() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 6]);
        trace.push_silence(3);
        trace.push_slot(vec![wp(0, 1)]);
        let engine = EngineConfig {
            flush: Some(FlushPolicy {
                period: 4,
                mode: FlushMode::Drain,
            }),
            drain_at_end: false,
        };
        let s = run_work(&mut sys, &trace, &engine).unwrap();
        // Everything is transmitted: the drain inserts extra slots.
        assert_eq!(s.score, 7);
        assert!(s.slots > 5);
    }

    #[test]
    fn occupancy_statistics_are_tracked() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 5]); // slot 0 ends with 4 resident
        trace.push_silence(2); // 3, 2 resident
        let s = run_work(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.max_occupancy, 4);
        // Occupancies after each slot: 4, 3, 2, then drain 1, 0.
        assert!((s.mean_occupancy - 2.0).abs() < 1e-12, "{}", s.mean_occupancy);
    }

    #[test]
    fn run_value_scores_value() {
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut sys = ValueRunner::new(cfg, GreedyValue::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![vp(0, 5), vp(1, 3), vp(0, 2)]);
        let s = run_value(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.score, 10);
    }

    #[test]
    fn run_combined_scores_value() {
        use smbm_core::{CombinedRunner, GreedyCombined};
        use smbm_switch::{CombinedPacket, Value, WorkSwitchConfig};
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut sys = CombinedRunner::new(cfg.clone(), GreedyCombined::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![
            CombinedPacket::new(PortId::new(0), cfg.work(PortId::new(0)), Value::new(5)),
            CombinedPacket::new(PortId::new(1), cfg.work(PortId::new(1)), Value::new(3)),
        ]);
        let s = run_combined(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.score, 8);
    }

    #[test]
    fn opt_surrogates_run_through_the_same_engine() {
        let mut opt = smbm_core::WorkPqOpt::new(4, 2);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1), wp(1, 2), wp(0, 1)]);
        let s = run_work(&mut opt, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.score, 3);
    }
}
