//! The offline trace driver: feeds any [`WorkSystem`]/[`ValueSystem`]
//! through an arrival trace, one burst per slot, with the paper's periodic
//! flushouts.
//!
//! The slot semantics themselves — flush, arrival, transmission, drain —
//! live in `smbm-datapath`'s [`SlotMachine`]; this module only decides when
//! to feed it (once per trace slot) and folds the machine's [`SlotStats`]
//! into a [`RunSummary`]. The model-specific `run_*` entry points wrap the
//! caller's system in the matching datapath adapter. Each entry point has
//! an `_observed` variant taking an [`Observer`]; the plain variants pass
//! [`NullObserver`], which monomorphizes every hook to a no-op, so
//! uninstrumented runs cost the same as before the observer existed — and
//! by construction execute the exact same slot sequence, so summaries and
//! counters are identical either way.
//!
//! [`SlotStats`]: smbm_datapath::SlotStats

use smbm_core::{CombinedSystem, ValueSystem, WorkSystem};
use smbm_datapath::{
    CombinedAdapter, DatapathSystem, NoHook, SlotMachine, ValueAdapter, WorkAdapter,
};
use smbm_obs::{NullObserver, Observer};
use smbm_switch::{AdmitError, CombinedPacket, ValuePacket, WorkPacket};
use smbm_traffic::Trace;

use crate::FlushPolicy;

/// Engine knobs shared by both models.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Periodic flushouts, as in the paper's simulations (`None` disables).
    pub flush: Option<FlushPolicy>,
    /// Whether to keep running arrival-free slots after the trace until the
    /// buffer empties, so every admitted packet is counted. The theorem
    /// traces set this to `false` (stuck heavy packets are the point);
    /// MMPP experiments set it to `true`.
    pub drain_at_end: bool,
}

impl EngineConfig {
    /// No flushouts, final drain enabled: the default for statistical runs.
    pub fn draining() -> Self {
        EngineConfig {
            flush: None,
            drain_at_end: true,
        }
    }

    /// No flushouts, no final drain: the setting for theorem traces.
    pub fn horizon_only() -> Self {
        EngineConfig {
            flush: None,
            drain_at_end: false,
        }
    }
}

/// Summary of one system's run over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Slots executed, including drain slots.
    pub slots: u64,
    /// Final objective value: packets transmitted (work model) or total
    /// value transmitted (value model).
    pub score: u64,
    /// Mean buffer occupancy sampled at the end of every slot.
    pub mean_occupancy: f64,
    /// Peak buffer occupancy sampled at the end of any slot.
    pub max_occupancy: usize,
}

/// The trace-fed driver: one machine step per trace slot, flush schedule
/// checked before each, optional final drain. All phase emission happens
/// inside the machine.
fn drive<S: DatapathSystem, O: Observer>(
    sys: S,
    trace: &Trace<S::Packet>,
    engine: &EngineConfig,
    obs: &mut O,
) -> Result<RunSummary, AdmitError> {
    let mut machine = SlotMachine::new(sys, engine.flush);
    for burst in trace.iter() {
        assert!(
            machine.flush_check(obs, &mut NoHook),
            "drain did not terminate"
        );
        machine.step(burst, obs, &mut NoHook)?;
    }
    if engine.drain_at_end {
        // The final drain contributes to the occupancy mean but not the
        // maximum (occupancy only falls while draining).
        assert!(
            machine.drain(obs, &mut NoHook, true),
            "final drain did not terminate"
        );
    }
    let stats = *machine.stats();
    Ok(RunSummary {
        slots: stats.slots,
        score: machine.score(),
        mean_occupancy: stats.mean_occupancy(),
        max_occupancy: stats.occ_max,
    })
}

/// Runs a work-model system over `trace`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_work<S: WorkSystem + ?Sized>(
    sys: &mut S,
    trace: &Trace<WorkPacket>,
    engine: &EngineConfig,
) -> Result<RunSummary, AdmitError> {
    run_work_observed(sys, trace, engine, &mut NullObserver)
}

/// Runs a work-model system over `trace`, reporting every engine event to
/// `obs`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_work_observed<S: WorkSystem + ?Sized, O: Observer>(
    sys: &mut S,
    trace: &Trace<WorkPacket>,
    engine: &EngineConfig,
    obs: &mut O,
) -> Result<RunSummary, AdmitError> {
    drive(WorkAdapter::new(sys), trace, engine, obs)
}

/// Runs a value-model system over `trace`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_value<S: ValueSystem + ?Sized>(
    sys: &mut S,
    trace: &Trace<ValuePacket>,
    engine: &EngineConfig,
) -> Result<RunSummary, AdmitError> {
    run_value_observed(sys, trace, engine, &mut NullObserver)
}

/// Runs a value-model system over `trace`, reporting every engine event to
/// `obs`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_value_observed<S: ValueSystem + ?Sized, O: Observer>(
    sys: &mut S,
    trace: &Trace<ValuePacket>,
    engine: &EngineConfig,
    obs: &mut O,
) -> Result<RunSummary, AdmitError> {
    drive(ValueAdapter::new(sys), trace, engine, obs)
}

/// Runs a combined-model system over `trace` (extension).
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_combined<S: CombinedSystem + ?Sized>(
    sys: &mut S,
    trace: &Trace<CombinedPacket>,
    engine: &EngineConfig,
) -> Result<RunSummary, AdmitError> {
    run_combined_observed(sys, trace, engine, &mut NullObserver)
}

/// Runs a combined-model system over `trace`, reporting every engine event
/// to `obs`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_combined_observed<S: CombinedSystem + ?Sized, O: Observer>(
    sys: &mut S,
    trace: &Trace<CombinedPacket>,
    engine: &EngineConfig,
    obs: &mut O,
) -> Result<RunSummary, AdmitError> {
    drive(CombinedAdapter::new(sys), trace, engine, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlushMode;
    use smbm_core::{GreedyValue, GreedyWork, ValueRunner, WorkRunner};
    use smbm_switch::{PortId, Value, ValueSwitchConfig, Work, WorkSwitchConfig};

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    fn vp(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    #[test]
    fn run_work_counts_transmissions() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1), wp(1, 2)]);
        trace.push_silence(2);
        let s = run_work(&mut sys, &trace, &EngineConfig::horizon_only()).unwrap();
        assert_eq!(s.slots, 3);
        assert_eq!(s.score, 2); // 1-cycle done slot 0, 2-cycle done slot 1
    }

    #[test]
    fn final_drain_counts_resident_packets() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 5]);
        let horizon = run_work(&mut sys, &trace, &EngineConfig::horizon_only()).unwrap();
        assert_eq!(horizon.score, 1);

        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let drained = run_work(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(drained.score, 5);
        assert_eq!(drained.slots, 5); // 1 trace slot + 4 drain slots
    }

    #[test]
    fn flush_drop_discards_backlog() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 6]);
        trace.push_silence(3); // slots 1..3
        trace.push_slot(vec![wp(0, 1)]); // slot 4, right at flush boundary
        let engine = EngineConfig {
            flush: Some(FlushPolicy {
                period: 4,
                mode: FlushMode::Drop,
            }),
            drain_at_end: false,
        };
        let s = run_work(&mut sys, &trace, &engine).unwrap();
        // Slots 0-3 transmit 4; flush at slot 4 drops the remaining 2, the
        // new arrival transmits at slot 4.
        assert_eq!(s.score, 5);
    }

    #[test]
    fn flush_drain_pauses_arrivals() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 6]);
        trace.push_silence(3);
        trace.push_slot(vec![wp(0, 1)]);
        let engine = EngineConfig {
            flush: Some(FlushPolicy {
                period: 4,
                mode: FlushMode::Drain,
            }),
            drain_at_end: false,
        };
        let s = run_work(&mut sys, &trace, &engine).unwrap();
        // Everything is transmitted: the drain inserts extra slots.
        assert_eq!(s.score, 7);
        assert!(s.slots > 5);
    }

    #[test]
    fn occupancy_statistics_are_tracked() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 5]); // slot 0 ends with 4 resident
        trace.push_silence(2); // 3, 2 resident
        let s = run_work(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.max_occupancy, 4);
        // Occupancies after each slot: 4, 3, 2, then drain 1, 0.
        assert!(
            (s.mean_occupancy - 2.0).abs() < 1e-12,
            "{}",
            s.mean_occupancy
        );
    }

    #[test]
    fn run_value_scores_value() {
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut sys = ValueRunner::new(cfg, GreedyValue::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![vp(0, 5), vp(1, 3), vp(0, 2)]);
        let s = run_value(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.score, 10);
    }

    #[test]
    fn run_combined_scores_value() {
        use smbm_core::{CombinedRunner, GreedyCombined};
        use smbm_switch::{CombinedPacket, Value, WorkSwitchConfig};
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut sys = CombinedRunner::new(cfg.clone(), GreedyCombined::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![
            CombinedPacket::new(PortId::new(0), cfg.work(PortId::new(0)), Value::new(5)),
            CombinedPacket::new(PortId::new(1), cfg.work(PortId::new(1)), Value::new(3)),
        ]);
        let s = run_combined(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.score, 8);
    }

    #[test]
    fn opt_surrogates_run_through_the_same_engine() {
        let mut opt = smbm_core::WorkPqOpt::new(4, 2);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1), wp(1, 2), wp(0, 1)]);
        let s = run_work(&mut opt, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.score, 3);
    }

    #[test]
    fn observed_run_matches_unobserved_and_logs_events() {
        use smbm_obs::{HistogramRecorder, RingEventLog};

        let mk = || {
            let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
            WorkRunner::new(cfg, GreedyWork::new(), 1)
        };
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 4]); // 2 admitted, 2 dropped
        trace.push_silence(1);

        let plain = run_work(&mut mk(), &trace, &EngineConfig::draining()).unwrap();
        let mut log = RingEventLog::new(64);
        let mut hist = HistogramRecorder::new();
        let mut obs = (&mut log, &mut hist);
        let observed =
            run_work_observed(&mut mk(), &trace, &EngineConfig::draining(), &mut obs).unwrap();
        assert_eq!(plain, observed);

        assert_eq!(hist.arrivals(), 4);
        assert_eq!(hist.admitted_packets(), 2);
        assert_eq!(
            hist.drop_count(smbm_obs::DropReason::BufferFull),
            2,
            "full-buffer greedy drops are classified as buffer_full"
        );
        assert_eq!(hist.transmitted_packets(), 2);
        let jsonl = log.to_jsonl();
        assert!(jsonl.contains("\"type\":\"arrival\""));
        assert!(jsonl.contains("\"type\":\"dropped\""));
        assert!(jsonl.contains("\"type\":\"transmitted\""));
    }

    #[test]
    fn drain_slots_are_bracketed() {
        use smbm_obs::{Event, RingEventLog};

        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 3]);
        let mut log = RingEventLog::new(64);
        run_work_observed(&mut sys, &trace, &EngineConfig::draining(), &mut log).unwrap();
        let events: Vec<&Event> = log.events().collect();
        assert!(matches!(
            events
                .iter()
                .find(|e| matches!(e, Event::DrainStart { .. })),
            Some(Event::DrainStart { slot: 1 })
        ));
        assert!(matches!(
            events.iter().find(|e| matches!(e, Event::DrainEnd { .. })),
            Some(Event::DrainEnd { slot: 3 })
        ));
    }
}
