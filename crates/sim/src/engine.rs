//! The two-phase slot loop: drives any [`WorkSystem`]/[`ValueSystem`]
//! through an arrival trace, with the paper's periodic flushouts.
//!
//! All three packet models share one instrumented driver ([`drive`]): the
//! model-specific `run_*` entry points only adapt their system trait to the
//! driver's interface. Each entry point has an `_observed` variant taking an
//! [`Observer`]; the plain variants pass [`NullObserver`], which
//! monomorphizes every hook to a no-op, so uninstrumented runs cost the same
//! as before the observer existed — and by construction execute the exact
//! same slot sequence, so summaries and counters are identical either way.

use smbm_core::{CombinedSystem, ValueSystem, WorkSystem};
use smbm_obs::{NullObserver, Observer, Phase};
use smbm_switch::{
    AdmitError, ArrivalOutcome, CombinedPacket, PortId, Transmitted, ValuePacket, WorkPacket,
};
use smbm_traffic::Trace;

use crate::{FlushMode, FlushPolicy};

/// Engine knobs shared by both models.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Periodic flushouts, as in the paper's simulations (`None` disables).
    pub flush: Option<FlushPolicy>,
    /// Whether to keep running arrival-free slots after the trace until the
    /// buffer empties, so every admitted packet is counted. The theorem
    /// traces set this to `false` (stuck heavy packets are the point);
    /// MMPP experiments set it to `true`.
    pub drain_at_end: bool,
}

impl EngineConfig {
    /// No flushouts, final drain enabled: the default for statistical runs.
    pub fn draining() -> Self {
        EngineConfig {
            flush: None,
            drain_at_end: true,
        }
    }

    /// No flushouts, no final drain: the setting for theorem traces.
    pub fn horizon_only() -> Self {
        EngineConfig {
            flush: None,
            drain_at_end: false,
        }
    }
}

/// Summary of one system's run over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Slots executed, including drain slots.
    pub slots: u64,
    /// Final objective value: packets transmitted (work model) or total
    /// value transmitted (value model).
    pub score: u64,
    /// Mean buffer occupancy sampled at the end of every slot.
    pub mean_occupancy: f64,
    /// Peak buffer occupancy sampled at the end of any slot.
    pub max_occupancy: usize,
}

/// Hard cap on drain slots, guarding against a non-work-conserving system
/// looping forever.
const MAX_DRAIN_SLOTS: u64 = 100_000_000;

/// The driver's view of a packet: destination port, work cycles, and value
/// (1 wherever a model lacks the dimension), feeding arrival events.
trait EnginePacket: Copy {
    fn meta(self) -> (PortId, u32, u64);
}

impl EnginePacket for WorkPacket {
    fn meta(self) -> (PortId, u32, u64) {
        (self.port(), self.work().cycles(), 1)
    }
}

impl EnginePacket for ValuePacket {
    fn meta(self) -> (PortId, u32, u64) {
        (self.port(), 1, self.value().get())
    }
}

impl EnginePacket for CombinedPacket {
    fn meta(self) -> (PortId, u32, u64) {
        (self.port(), self.work().cycles(), self.value().get())
    }
}

/// The driver's view of a system: the subset of the `*System` traits the
/// slot loop needs, adapted per model so one loop serves all three.
trait EngineSystem {
    type Packet: EnginePacket;

    fn offer(&mut self, pkt: Self::Packet) -> Result<ArrivalOutcome, AdmitError>;
    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64;
    fn end_slot(&mut self);
    fn flush(&mut self) -> u64;
    fn occupancy(&self) -> usize;
    fn score(&self) -> u64;
}

struct WorkAdapter<'a, S: ?Sized>(&'a mut S);

impl<S: WorkSystem + ?Sized> EngineSystem for WorkAdapter<'_, S> {
    type Packet = WorkPacket;

    fn offer(&mut self, pkt: WorkPacket) -> Result<ArrivalOutcome, AdmitError> {
        self.0.offer(pkt)
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        self.0.transmission_phase_into(out)
    }

    fn end_slot(&mut self) {
        self.0.end_slot();
    }

    fn flush(&mut self) -> u64 {
        self.0.flush()
    }

    fn occupancy(&self) -> usize {
        self.0.occupancy()
    }

    fn score(&self) -> u64 {
        self.0.transmitted()
    }
}

struct ValueAdapter<'a, S: ?Sized>(&'a mut S);

impl<S: ValueSystem + ?Sized> EngineSystem for ValueAdapter<'_, S> {
    type Packet = ValuePacket;

    fn offer(&mut self, pkt: ValuePacket) -> Result<ArrivalOutcome, AdmitError> {
        self.0.offer(pkt)
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        self.0.transmission_phase_into(out)
    }

    fn end_slot(&mut self) {
        self.0.end_slot();
    }

    fn flush(&mut self) -> u64 {
        self.0.flush()
    }

    fn occupancy(&self) -> usize {
        self.0.occupancy()
    }

    fn score(&self) -> u64 {
        self.0.transmitted_value()
    }
}

struct CombinedAdapter<'a, S: ?Sized>(&'a mut S);

impl<S: CombinedSystem + ?Sized> EngineSystem for CombinedAdapter<'_, S> {
    type Packet = CombinedPacket;

    fn offer(&mut self, pkt: CombinedPacket) -> Result<ArrivalOutcome, AdmitError> {
        self.0.offer(pkt)
    }

    fn transmission_phase_into(&mut self, out: &mut Vec<Transmitted>) -> u64 {
        self.0.transmission_phase_into(out)
    }

    fn end_slot(&mut self) {
        self.0.end_slot();
    }

    fn flush(&mut self) -> u64 {
        self.0.flush()
    }

    fn occupancy(&self) -> usize {
        self.0.occupancy()
    }

    fn score(&self) -> u64 {
        self.0.transmitted_value()
    }
}

/// Runs one transmission phase, forwarding each completed packet to the
/// observer. `scratch` is reused across slots, so the uninstrumented path
/// allocates no more than the pre-observer engine did.
fn transmission<S: EngineSystem, O: Observer>(
    sys: &mut S,
    slot: u64,
    scratch: &mut Vec<Transmitted>,
    obs: &mut O,
) {
    scratch.clear();
    sys.transmission_phase_into(scratch);
    for t in scratch.iter() {
        obs.transmitted(slot, t.port, t.latency(), t.value.get());
    }
}

/// Runs arrival-free slots until the buffer empties. Returns the number of
/// slots executed; the caller decides how they enter the occupancy
/// statistics (mid-trace drains are excluded, the final drain is averaged).
fn drain<S: EngineSystem, O: Observer>(
    sys: &mut S,
    slots: &mut u64,
    scratch: &mut Vec<Transmitted>,
    obs: &mut O,
    occ_sum: Option<&mut u64>,
    guard_msg: &str,
) {
    if sys.occupancy() == 0 {
        return;
    }
    obs.drain_start(*slots);
    let mut sum_acc = 0u64;
    let mut guard = 0u64;
    while sys.occupancy() > 0 {
        let slot = *slots;
        obs.slot_start(slot);
        obs.phase_start(Phase::Drain);
        transmission(sys, slot, scratch, obs);
        sys.end_slot();
        obs.phase_end(Phase::Drain);
        *slots += 1;
        sum_acc += sys.occupancy() as u64;
        obs.slot_end(slot, sys.occupancy());
        guard += 1;
        assert!(guard < MAX_DRAIN_SLOTS, "{guard_msg}");
    }
    if let Some(occ_sum) = occ_sum {
        *occ_sum += sum_acc;
    }
    obs.drain_end(*slots);
}

/// The shared two-phase slot loop. Only this function encodes the engine's
/// semantics; the public `run_*` entry points adapt their model to it.
fn drive<S: EngineSystem, O: Observer>(
    sys: &mut S,
    trace: &Trace<S::Packet>,
    engine: &EngineConfig,
    obs: &mut O,
) -> Result<RunSummary, AdmitError> {
    let mut slots = 0u64;
    let mut occ_sum = 0u64;
    let mut occ_max = 0usize;
    let mut scratch: Vec<Transmitted> = Vec::new();
    for (i, burst) in trace.iter().enumerate() {
        if let Some(flush) = &engine.flush {
            if flush.due(i as u64) {
                match flush.mode {
                    FlushMode::Drop => {
                        obs.phase_start(Phase::Flush);
                        let discarded = sys.flush();
                        obs.flush(slots, discarded);
                        obs.phase_end(Phase::Flush);
                    }
                    FlushMode::Drain => {
                        // Mid-trace drain slots are excluded from the
                        // occupancy statistics, as in the original engine.
                        drain(
                            sys,
                            &mut slots,
                            &mut scratch,
                            obs,
                            None,
                            "drain did not terminate",
                        );
                    }
                }
            }
        }
        let slot = slots;
        obs.slot_start(slot);
        obs.phase_start(Phase::Arrival);
        for &pkt in burst {
            let (port, work, value) = pkt.meta();
            obs.arrival(slot, port, work, value);
            match sys.offer(pkt)? {
                ArrivalOutcome::Admitted => obs.admitted(slot, port),
                ArrivalOutcome::PushedOut(victim) => {
                    obs.pushed_out(slot, victim);
                    obs.admitted(slot, port);
                }
                ArrivalOutcome::Dropped(reason) => obs.dropped(slot, port, reason),
            }
        }
        obs.phase_end(Phase::Arrival);
        obs.phase_start(Phase::Transmission);
        transmission(sys, slot, &mut scratch, obs);
        obs.phase_end(Phase::Transmission);
        sys.end_slot();
        slots += 1;
        occ_sum += sys.occupancy() as u64;
        occ_max = occ_max.max(sys.occupancy());
        obs.slot_end(slot, sys.occupancy());
    }
    if engine.drain_at_end {
        // The final drain contributes to the occupancy mean but not the
        // maximum (occupancy only falls while draining).
        drain(
            sys,
            &mut slots,
            &mut scratch,
            obs,
            Some(&mut occ_sum),
            "final drain did not terminate",
        );
    }
    Ok(RunSummary {
        slots,
        score: sys.score(),
        mean_occupancy: if slots == 0 {
            0.0
        } else {
            occ_sum as f64 / slots as f64
        },
        max_occupancy: occ_max,
    })
}

/// Runs a work-model system over `trace`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_work<S: WorkSystem + ?Sized>(
    sys: &mut S,
    trace: &Trace<WorkPacket>,
    engine: &EngineConfig,
) -> Result<RunSummary, AdmitError> {
    run_work_observed(sys, trace, engine, &mut NullObserver)
}

/// Runs a work-model system over `trace`, reporting every engine event to
/// `obs`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_work_observed<S: WorkSystem + ?Sized, O: Observer>(
    sys: &mut S,
    trace: &Trace<WorkPacket>,
    engine: &EngineConfig,
    obs: &mut O,
) -> Result<RunSummary, AdmitError> {
    drive(&mut WorkAdapter(sys), trace, engine, obs)
}

/// Runs a value-model system over `trace`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_value<S: ValueSystem + ?Sized>(
    sys: &mut S,
    trace: &Trace<ValuePacket>,
    engine: &EngineConfig,
) -> Result<RunSummary, AdmitError> {
    run_value_observed(sys, trace, engine, &mut NullObserver)
}

/// Runs a value-model system over `trace`, reporting every engine event to
/// `obs`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_value_observed<S: ValueSystem + ?Sized, O: Observer>(
    sys: &mut S,
    trace: &Trace<ValuePacket>,
    engine: &EngineConfig,
    obs: &mut O,
) -> Result<RunSummary, AdmitError> {
    drive(&mut ValueAdapter(sys), trace, engine, obs)
}

/// Runs a combined-model system over `trace` (extension).
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_combined<S: CombinedSystem + ?Sized>(
    sys: &mut S,
    trace: &Trace<CombinedPacket>,
    engine: &EngineConfig,
) -> Result<RunSummary, AdmitError> {
    run_combined_observed(sys, trace, engine, &mut NullObserver)
}

/// Runs a combined-model system over `trace`, reporting every engine event
/// to `obs`.
///
/// # Errors
///
/// Propagates an [`AdmitError`] raised by an inconsistent policy decision.
pub fn run_combined_observed<S: CombinedSystem + ?Sized, O: Observer>(
    sys: &mut S,
    trace: &Trace<CombinedPacket>,
    engine: &EngineConfig,
    obs: &mut O,
) -> Result<RunSummary, AdmitError> {
    drive(&mut CombinedAdapter(sys), trace, engine, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smbm_core::{GreedyValue, GreedyWork, ValueRunner, WorkRunner};
    use smbm_switch::{PortId, Value, ValueSwitchConfig, Work, WorkSwitchConfig};

    fn wp(port: usize, w: u32) -> WorkPacket {
        WorkPacket::new(PortId::new(port), Work::new(w))
    }

    fn vp(port: usize, v: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(v))
    }

    #[test]
    fn run_work_counts_transmissions() {
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1), wp(1, 2)]);
        trace.push_silence(2);
        let s = run_work(&mut sys, &trace, &EngineConfig::horizon_only()).unwrap();
        assert_eq!(s.slots, 3);
        assert_eq!(s.score, 2); // 1-cycle done slot 0, 2-cycle done slot 1
    }

    #[test]
    fn final_drain_counts_resident_packets() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 5]);
        let horizon = run_work(&mut sys, &trace, &EngineConfig::horizon_only()).unwrap();
        assert_eq!(horizon.score, 1);

        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let drained = run_work(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(drained.score, 5);
        assert_eq!(drained.slots, 5); // 1 trace slot + 4 drain slots
    }

    #[test]
    fn flush_drop_discards_backlog() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 6]);
        trace.push_silence(3); // slots 1..3
        trace.push_slot(vec![wp(0, 1)]); // slot 4, right at flush boundary
        let engine = EngineConfig {
            flush: Some(FlushPolicy {
                period: 4,
                mode: FlushMode::Drop,
            }),
            drain_at_end: false,
        };
        let s = run_work(&mut sys, &trace, &engine).unwrap();
        // Slots 0-3 transmit 4; flush at slot 4 drops the remaining 2, the
        // new arrival transmits at slot 4.
        assert_eq!(s.score, 5);
    }

    #[test]
    fn flush_drain_pauses_arrivals() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 6]);
        trace.push_silence(3);
        trace.push_slot(vec![wp(0, 1)]);
        let engine = EngineConfig {
            flush: Some(FlushPolicy {
                period: 4,
                mode: FlushMode::Drain,
            }),
            drain_at_end: false,
        };
        let s = run_work(&mut sys, &trace, &engine).unwrap();
        // Everything is transmitted: the drain inserts extra slots.
        assert_eq!(s.score, 7);
        assert!(s.slots > 5);
    }

    #[test]
    fn occupancy_statistics_are_tracked() {
        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 5]); // slot 0 ends with 4 resident
        trace.push_silence(2); // 3, 2 resident
        let s = run_work(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.max_occupancy, 4);
        // Occupancies after each slot: 4, 3, 2, then drain 1, 0.
        assert!(
            (s.mean_occupancy - 2.0).abs() < 1e-12,
            "{}",
            s.mean_occupancy
        );
    }

    #[test]
    fn run_value_scores_value() {
        let cfg = ValueSwitchConfig::new(4, 2).unwrap();
        let mut sys = ValueRunner::new(cfg, GreedyValue::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![vp(0, 5), vp(1, 3), vp(0, 2)]);
        let s = run_value(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.score, 10);
    }

    #[test]
    fn run_combined_scores_value() {
        use smbm_core::{CombinedRunner, GreedyCombined};
        use smbm_switch::{CombinedPacket, Value, WorkSwitchConfig};
        let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
        let mut sys = CombinedRunner::new(cfg.clone(), GreedyCombined::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![
            CombinedPacket::new(PortId::new(0), cfg.work(PortId::new(0)), Value::new(5)),
            CombinedPacket::new(PortId::new(1), cfg.work(PortId::new(1)), Value::new(3)),
        ]);
        let s = run_combined(&mut sys, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.score, 8);
    }

    #[test]
    fn opt_surrogates_run_through_the_same_engine() {
        let mut opt = smbm_core::WorkPqOpt::new(4, 2);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1), wp(1, 2), wp(0, 1)]);
        let s = run_work(&mut opt, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(s.score, 3);
    }

    #[test]
    fn observed_run_matches_unobserved_and_logs_events() {
        use smbm_obs::{HistogramRecorder, RingEventLog};

        let mk = || {
            let cfg = WorkSwitchConfig::contiguous(1, 2).unwrap();
            WorkRunner::new(cfg, GreedyWork::new(), 1)
        };
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 4]); // 2 admitted, 2 dropped
        trace.push_silence(1);

        let plain = run_work(&mut mk(), &trace, &EngineConfig::draining()).unwrap();
        let mut log = RingEventLog::new(64);
        let mut hist = HistogramRecorder::new();
        let mut obs = (&mut log, &mut hist);
        let observed =
            run_work_observed(&mut mk(), &trace, &EngineConfig::draining(), &mut obs).unwrap();
        assert_eq!(plain, observed);

        assert_eq!(hist.arrivals(), 4);
        assert_eq!(hist.admitted_packets(), 2);
        assert_eq!(
            hist.drop_count(smbm_obs::DropReason::BufferFull),
            2,
            "full-buffer greedy drops are classified as buffer_full"
        );
        assert_eq!(hist.transmitted_packets(), 2);
        let jsonl = log.to_jsonl();
        assert!(jsonl.contains("\"type\":\"arrival\""));
        assert!(jsonl.contains("\"type\":\"dropped\""));
        assert!(jsonl.contains("\"type\":\"transmitted\""));
    }

    #[test]
    fn drain_slots_are_bracketed() {
        use smbm_obs::{Event, RingEventLog};

        let cfg = WorkSwitchConfig::contiguous(1, 8).unwrap();
        let mut sys = WorkRunner::new(cfg, GreedyWork::new(), 1);
        let mut trace = Trace::new();
        trace.push_slot(vec![wp(0, 1); 3]);
        let mut log = RingEventLog::new(64);
        run_work_observed(&mut sys, &trace, &EngineConfig::draining(), &mut log).unwrap();
        let events: Vec<&Event> = log.events().collect();
        assert!(matches!(
            events
                .iter()
                .find(|e| matches!(e, Event::DrainStart { .. })),
            Some(Event::DrainStart { slot: 1 })
        ));
        assert!(matches!(
            events.iter().find(|e| matches!(e, Event::DrainEnd { .. })),
            Some(Event::DrainEnd { slot: 3 })
        ));
    }
}
