//! # smbm-bench
//!
//! The evaluation harness: everything needed to regenerate the paper's
//! Fig. 5 (all nine panels) and the theorem lower-bound table, shared by the
//! `fig5`, `lower_bounds` and `ablations` binaries and by the integration
//! tests.
//!
//! The paper runs 500 MMPP sources for 2·10⁶ slots per point; the defaults
//! here are scaled down (see [`PanelScale`]) so a full panel regenerates in
//! seconds on a laptop — pass `--scale paper` to the binaries for the full
//! setting. EXPERIMENTS.md records the parameters used for the committed
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod lower_bounds;
pub mod panels;

pub use ablation::{
    awd_alpha_ablation, flush_ablation, lwd_tie_break_ablation, mrd_variants_ablation,
    nhdt_generalization_ablation, opt_cores_ablation, render_ablation, AblationRow,
};
pub use lower_bounds::{
    all_lower_bounds, lower_bound_by_name, lwd_upper_bound_stress, render_table, LOWER_BOUND_NAMES,
};
pub use panels::{
    panel_point_metrics, render_panel, render_panel_averaged, run_panel, run_panel_averaged,
    run_panel_averaged_with_jobs, run_panel_with_jobs, Panel, PanelScale,
};
