//! Regenerates the panels of the paper's Fig. 5 as CSV on stdout.
//!
//! ```text
//! fig5 [--panel N] [--scale smoke|default|paper] [--seed S] [--repeats R]
//!      [--jobs N]            # cap sweep worker threads (default: all cores)
//!      [--gnuplot-dir DIR]   # also write panelN.csv + panelN.gp files
//!      [--metrics-dir DIR]   # also write panelN.POLICY.json metric sidecars
//! ```
//!
//! Without `--panel`, all nine panels are printed in order.

use std::process::ExitCode;

use smbm_bench::{Panel, PanelScale};

fn usage() -> &'static str {
    "usage: fig5 [--panel 1..9] [--scale smoke|default|paper] [--seed N] [--repeats R] [--jobs N] [--gnuplot-dir DIR] [--metrics-dir DIR]"
}

fn main() -> ExitCode {
    let mut panel: Option<u8> = None;
    let mut scale = PanelScale::Default;
    let mut seed = 0xB0FFE2u64;
    let mut repeats = 1u32;
    let mut jobs: Option<usize> = None;
    let mut gnuplot_dir: Option<String> = None;
    let mut metrics_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--panel" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                panel = Some(v);
            }
            "--scale" => match args.next().as_deref() {
                Some("smoke") => scale = PanelScale::Smoke,
                Some("default") => scale = PanelScale::Default,
                Some("paper") => scale = PanelScale::Paper,
                _ => {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            "--repeats" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                if v == 0 {
                    eprintln!("--repeats must be at least 1");
                    return ExitCode::FAILURE;
                }
                repeats = v;
            }
            "--jobs" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                if v == 0 {
                    eprintln!("--jobs must be at least 1");
                    return ExitCode::FAILURE;
                }
                jobs = Some(v);
            }
            "--gnuplot-dir" => {
                let Some(v) = args.next() else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                gnuplot_dir = Some(v);
            }
            "--metrics-dir" => {
                let Some(v) = args.next() else {
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                };
                metrics_dir = Some(v);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let panels: Vec<Panel> = match panel {
        Some(n) => match Panel::new(n) {
            Some(p) => vec![p],
            None => {
                eprintln!("panel must be 1..9\n{}", usage());
                return ExitCode::FAILURE;
            }
        },
        None => Panel::all().collect(),
    };
    for p in panels {
        let (series, _spread) =
            match smbm_bench::run_panel_averaged_with_jobs(p, scale, seed, repeats, jobs) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("panel {} failed: {e}", p.number());
                    return ExitCode::FAILURE;
                }
            };
        let csv = smbm_sim::series_to_csv(p.x_label(), &series);
        println!(
            "# Fig.5({}) {} [scale {:?}, seed {}, repeats {}]",
            p.number(),
            p.caption(),
            scale,
            seed,
            repeats
        );
        println!("{csv}");
        if let Some(dir) = &gnuplot_dir {
            let base = format!("{dir}/panel{}", p.number());
            let gp = smbm_sim::series_to_gnuplot(
                p.caption(),
                p.x_label(),
                &format!("panel{}.csv", p.number()),
                &series,
            );
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|_| std::fs::write(format!("{base}.csv"), &csv))
                .and_then(|_| std::fs::write(format!("{base}.gp"), &gp))
            {
                eprintln!("failed to write gnuplot files: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(dir) = &metrics_dir {
            let metrics = match smbm_bench::panel_point_metrics(p, scale, seed) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("panel {} metrics failed: {e}", p.number());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::create_dir_all(dir).and_then(|_| {
                for (policy, json) in &metrics {
                    let path = format!("{dir}/panel{}.{policy}.json", p.number());
                    std::fs::write(&path, format!("{json}\n"))?;
                    println!("# metrics written to {path}");
                }
                Ok(())
            }) {
                eprintln!("failed to write metrics files: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
