//! Regenerates the theorem lower-bound table: every adversarial
//! construction replayed against its scripted OPT.
//!
//! ```text
//! lower_bounds [name ...]
//! ```
//!
//! Without arguments, all constructions run. Valid names:
//! `nhst nest nhdt lqd-work bpd lwd lqd-value mvd mrd`.

use std::process::ExitCode;

use smbm_bench::{all_lower_bounds, lower_bound_by_name, render_table, LOWER_BOUND_NAMES};

fn main() -> ExitCode {
    let names: Vec<String> = std::env::args().skip(1).collect();
    if names.iter().any(|n| n == "--help" || n == "-h") {
        println!("usage: lower_bounds [{}]", LOWER_BOUND_NAMES.join("|"));
        return ExitCode::SUCCESS;
    }
    let reports = if names.is_empty() {
        match all_lower_bounds() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("replay failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let mut reports = Vec::new();
        for name in &names {
            match lower_bound_by_name(name) {
                Some(Ok(r)) => reports.push(r),
                Some(Err(e)) => {
                    eprintln!("{name} failed: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!(
                        "unknown construction {name:?}; valid: {}",
                        LOWER_BOUND_NAMES.join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        reports
    };
    print!("{}", render_table(&reports));
    ExitCode::SUCCESS
}
