//! The paper's Fig. 1 architectural comparison, executed: a single shared
//! queue (FIFO greedy / FIFO push-out / priority-queue) versus the
//! shared-memory switch under its best policies, at equal total core count,
//! on identical bursty heterogeneous traffic.
//!
//! ```text
//! architectures [--slots N] [--seed S]
//! ```

use std::process::ExitCode;

use smbm_core::{
    work_policy_by_name, FifoAdmission, SingleFifoQueue, WorkPqOpt, WorkRunner, WorkSystem,
};
use smbm_sim::{run_work, EngineConfig};
use smbm_switch::WorkSwitchConfig;
use smbm_traffic::{MmppScenario, PortMix};

fn main() -> ExitCode {
    let mut slots = 50_000usize;
    let mut seed = 0xB0FFE2u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--slots" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => slots = v,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("usage: architectures [--slots N] [--seed S]");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let cores = cfg.ports() as u32; // C = 1 per port; single queues get all 8
    let trace = MmppScenario {
        sources: 12,
        slots,
        seed,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .expect("valid scenario");
    let engine = EngineConfig::draining();

    println!(
        "# architectures: k=8 B=64 total cores={cores}, {} arrivals",
        trace.arrivals()
    );
    println!(
        "{:<26} {:>12} {:>12} {:>10}",
        "system", "packets", "mean lat.", "goodput"
    );

    let report = |label: String, score: u64, lat: f64, goodput: f64| {
        println!("{label:<26} {score:>12} {lat:>12.2} {goodput:>10.4}");
    };

    // Single-queue architecture (top of Fig. 1).
    for adm in [FifoAdmission::Greedy, FifoAdmission::PushOutLargest] {
        let mut q = SingleFifoQueue::new(cfg.buffer(), cores, adm);
        let score = match run_work(&mut q, &trace, &engine) {
            Ok(s) => s.score,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        report(
            q.label(),
            score,
            q.counters().mean_latency(),
            q.counters().goodput(),
        );
    }
    {
        let mut pq = WorkPqOpt::new(cfg.buffer(), cores);
        let score = match run_work(&mut pq, &trace, &engine) {
            Ok(s) => s.score,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        // The PQ surrogate does not track per-packet sojourn times.
        println!(
            "{:<26} {:>12} {:>12} {:>10.4}",
            format!("1Q-PQ(pushout,{cores}cores)"),
            score,
            "n/a",
            pq.counters().goodput()
        );
    }

    // Shared-memory architecture (bottom of Fig. 1), one core per port.
    for name in ["NEST", "LQD", "LWD"] {
        let policy = work_policy_by_name(name).expect("registry name");
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let score = match run_work(&mut runner, &trace, &engine) {
            Ok(s) => s.score,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let c = runner.switch().counters();
        report(
            format!("shared-memory {name}"),
            score,
            c.mean_latency(),
            c.goodput(),
        );
    }

    println!(
        "\nreading: 1Q-PQ (priority order + push-out) is the throughput-optimal\n\
         single-queue design the paper cites; the realistic greedy FIFO single\n\
         queue collapses under head-of-line blocking. Shared-memory + LWD gets\n\
         most of the way to 1Q-PQ with plain per-port FIFO queues and no\n\
         cross-type cores -- the paper's architectural argument. (A push-out\n\
         FIFO single queue is statistically competitive too, but keeps the\n\
         starvation and per-core-complexity drawbacks of the single-queue\n\
         design, and its worst case remains Omega(log k).)"
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: architectures [--slots N] [--seed S]");
    ExitCode::FAILURE
}
