//! Fairness experiment: the paper motivates shared memory with the tension
//! between complete sharing (utilization) and complete partitioning
//! (fairness). One port is flooded 8x harder than the rest; this binary
//! reports throughput *and* Jain fairness per policy.
//!
//! ```text
//! fairness [--slots N] [--seed S]
//! ```

use std::process::ExitCode;

use smbm_core::{work_policy_by_name, WorkRunner};
use smbm_sim::{jain_index, max_port_share, run_work, EngineConfig};
use smbm_switch::WorkSwitchConfig;
use smbm_traffic::{MmppScenario, PortMix};

fn main() -> ExitCode {
    let mut slots = 50_000usize;
    let mut seed = 0xB0FFE2u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--slots" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => slots = v,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("usage: fairness [--slots N] [--seed S]");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    // Homogeneous works isolate the fairness question from work effects;
    // port 1 receives 8x the traffic of each other port.
    let ports = 8usize;
    let cfg = WorkSwitchConfig::homogeneous(ports, 64).expect("valid");
    let mut weights = vec![1.0; ports];
    weights[0] = 8.0;
    let trace = MmppScenario {
        sources: 24,
        slots,
        seed,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Weighted(weights))
    .expect("valid scenario");

    println!(
        "# fairness under an 8x hot port: n={ports} B=64 homogeneous work, {} arrivals",
        trace.arrivals()
    );
    println!(
        "{:<8} {:>12} {:>8} {:>10} {:>16}",
        "policy", "packets", "jain", "max-share", "cold-port min"
    );
    let mut roster: Vec<&str> = vec!["GREEDY"];
    roster.extend(smbm_core::WORK_POLICY_NAMES);
    for name in roster {
        let policy = work_policy_by_name(name).expect("registry name");
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        if let Err(e) = run_work(&mut runner, &trace, &EngineConfig::draining()) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        let per_port = runner.switch().transmitted_per_port();
        let cold_min = per_port[1..].iter().min().copied().unwrap_or(0);
        println!(
            "{:<8} {:>12} {:>8.4} {:>10.4} {:>16}",
            name,
            runner.switch().counters().transmitted(),
            jain_index(per_port),
            max_port_share(per_port),
            cold_min
        );
    }
    println!(
        "\nreading: GREEDY (complete sharing) lets the hot port crowd the\n\
         buffer; the static thresholds partition it (fair); LQD/LWD recover\n\
         fairness without giving up utilization — the paper's best-of-both-\n\
         worlds motivation. BPD's collapse is its index tie-break starving\n\
         high ports once works are homogeneous."
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: fairness [--slots N] [--seed S]");
    ExitCode::FAILURE
}
