//! Runs the design-choice ablations documented in DESIGN.md.
//!
//! ```text
//! ablations [--slots N] [--seed S]
//! ```

use std::process::ExitCode;

use smbm_bench::ablation::render_ablation;
use smbm_bench::{flush_ablation, lwd_tie_break_ablation, opt_cores_ablation};

fn main() -> ExitCode {
    let mut slots = 50_000usize;
    let mut seed = 0xB0FFE2u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--slots" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => slots = v,
                None => {
                    eprintln!("usage: ablations [--slots N] [--seed S]");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("usage: ablations [--slots N] [--seed S]");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: ablations [--slots N] [--seed S]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    #[allow(clippy::type_complexity)]
    let runs: [(&str, fn(usize, u64) -> _); 5] = [
        ("flush mode (LWD throughput)", flush_ablation),
        ("LWD tie-break", lwd_tie_break_ablation),
        ("OPT surrogate core count", opt_cores_ablation),
        (
            "AWD(alpha): LQD..LWD interpolation",
            smbm_bench::awd_alpha_ablation,
        ),
        (
            "MRD variants across port mixes",
            smbm_bench::mrd_variants_ablation,
        ),
    ];
    for (title, run) in runs {
        match run(slots, seed) {
            Ok(rows) => println!("{}", render_ablation(title, &rows)),
            Err(e) => {
                eprintln!("{title} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match smbm_bench::nhdt_generalization_ablation(seed) {
        Ok(rows) => println!(
            "{}",
            render_ablation("NHDT vs NHDT-W (open problem)", &rows)
        ),
        Err(e) => {
            eprintln!("NHDT generalization failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
