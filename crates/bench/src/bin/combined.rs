//! The combined-model experiment (extension): per-port works and per-packet
//! values together — the direction the paper's conclusion points at.
//! Compares GREEDY, LQD, LWD, MVD-D, and the hybrid WVD against the
//! density-greedy OPT surrogate under three value mixes.
//!
//! ```text
//! combined [--slots N] [--seed S]
//! ```

use std::process::ExitCode;

use smbm_core::{combined_policy_by_name, CombinedPqOpt, CombinedRunner};
use smbm_sim::{run_combined, EngineConfig};
use smbm_switch::WorkSwitchConfig;
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

fn main() -> ExitCode {
    let mut slots = 50_000usize;
    let mut seed = 0xB0FFE2u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--slots" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => slots = v,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("usage: combined [--slots N] [--seed S]");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let mixes: [(&str, ValueMix); 3] = [
        ("uniform-values", ValueMix::Uniform { max: 16 }),
        ("value==port", ValueMix::EqualsPort),
        (
            "zipf-high",
            ValueMix::ZipfHigh {
                max: 16,
                exponent: 1.2,
            },
        ),
    ];
    for (label, mix) in mixes {
        let trace = MmppScenario {
            sources: 12,
            slots,
            seed,
            ..Default::default()
        }
        .combined_trace(&cfg, &PortMix::Uniform, &mix)
        .expect("valid scenario");
        let mut opt = CombinedPqOpt::new(cfg.buffer(), cfg.ports() as u32);
        let opt_score = match run_combined(&mut opt, &trace, &EngineConfig::draining()) {
            Ok(s) => s.score,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        println!("== {label}: {} arrivals ==", trace.arrivals());
        println!("{:<8} {:>14} {:>8}", "policy", "value out", "ratio");
        println!("{:<8} {:>14} {:>8}", "OPT(den)", opt_score, 1.0);
        for name in smbm_core::COMBINED_POLICY_NAMES {
            let policy = combined_policy_by_name(name).expect("registry name");
            let mut runner = CombinedRunner::new(cfg.clone(), policy, 1);
            let score = match run_combined(&mut runner, &trace, &EngineConfig::draining()) {
                Ok(s) => s.score,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{:<8} {:>14} {:>8.4}",
                name,
                score,
                opt_score as f64 / score as f64
            );
        }
        println!();
    }
    println!(
        "WVD (max outstanding-work per unit average value) is this repo's\n\
         candidate policy for the combined model: it reduces to LWD on equal\n\
         values and to MRD on unit works. No competitive bound is claimed."
    );
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage: combined [--slots N] [--seed S]");
    ExitCode::FAILURE
}
