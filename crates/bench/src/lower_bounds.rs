//! The theorem lower-bound table: replay every adversarial construction and
//! compare the measured ratio with the theorem's bound.

use smbm_sim::{
    measure_value_construction, measure_work_construction, ConstructionReport, ExperimentError,
};
use smbm_traffic::adversarial;

/// Registry keys accepted by [`lower_bound_by_name`].
pub const LOWER_BOUND_NAMES: &[&str] = &[
    "nhst",
    "nest",
    "nhdt",
    "lqd-work",
    "bpd",
    "lwd",
    "lwd-upper",
    "greedy-value",
    "lqd-value",
    "mvd",
    "mrd",
];

/// Theorem 7 stress: runs **LWD** on every *work-model* attack trace
/// (including the ones designed for other policies) against each trace's
/// scripted OPT, and reports the worst ratio observed. Theorem 7 guarantees
/// it stays below 2 on any arrival sequence.
///
/// # Errors
///
/// Propagates [`ExperimentError`] from a replay.
pub fn lwd_upper_bound_stress() -> Result<ConstructionReport, ExperimentError> {
    let mut constructions = vec![
        adversarial::nhst_lower_bound(8, 96, 5),
        adversarial::nest_lower_bound(8, 48, 5),
        adversarial::nhdt_lower_bound(32, 256, 3),
        adversarial::lqd_work_lower_bound(36, 144, 4),
        adversarial::bpd_lower_bound(16, 64, 5_000),
        adversarial::lwd_lower_bound(120, 20),
    ];
    let mut worst: Option<ConstructionReport> = None;
    for c in &mut constructions {
        c.target_policy = "LWD";
        let r = measure_work_construction(c)?;
        if worst.as_ref().is_none_or(|w| r.ratio() > w.ratio()) {
            worst = Some(r);
        }
    }
    let mut worst = worst.expect("at least one construction ran");
    worst.name = format!("Thm7 LWD worst-of-6 ({})", worst.name);
    worst.predicted = 2.0; // the upper bound it must stay below
    Ok(worst)
}

/// Runs one theorem's construction at its default parameters.
///
/// # Errors
///
/// Returns `None` for unknown names; propagates [`ExperimentError`] from the
/// replay.
pub fn lower_bound_by_name(name: &str) -> Option<Result<ConstructionReport, ExperimentError>> {
    let report = match name.to_ascii_lowercase().as_str() {
        // Parameters are chosen so each bound is visible but the replay
        // stays fast; the binaries accept overrides.
        "nhst" => measure_work_construction(&adversarial::nhst_lower_bound(8, 48, 20)),
        "nest" => measure_work_construction(&adversarial::nest_lower_bound(8, 48, 20)),
        "nhdt" => measure_work_construction(&adversarial::nhdt_lower_bound(64, 512, 6)),
        "lqd-work" => measure_work_construction(&adversarial::lqd_work_lower_bound(64, 256, 8)),
        "bpd" => measure_work_construction(&adversarial::bpd_lower_bound(16, 64, 20_000)),
        "lwd" => measure_work_construction(&adversarial::lwd_lower_bound(120, 40)),
        "lwd-upper" => lwd_upper_bound_stress(),
        "greedy-value" => {
            measure_value_construction(&adversarial::greedy_value_lower_bound(16, 64, 10))
        }
        "lqd-value" => measure_value_construction(&adversarial::lqd_value_lower_bound(64, 128, 20)),
        "mvd" => measure_value_construction(&adversarial::mvd_lower_bound(16, 64, 20_000)),
        "mrd" => measure_value_construction(&adversarial::mrd_lower_bound(120, 40)),
        _ => return None,
    };
    Some(report)
}

/// Runs the full table.
///
/// # Errors
///
/// Propagates the first replay failure.
pub fn all_lower_bounds() -> Result<Vec<ConstructionReport>, ExperimentError> {
    LOWER_BOUND_NAMES
        .iter()
        .map(|n| lower_bound_by_name(n).expect("registry names are valid"))
        .collect()
}

/// Renders construction reports as an aligned text table.
pub fn render_table(reports: &[ConstructionReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<30} {:>8} {:>10} {:>10}\n",
        "construction", "policy", "measured", "predicted"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<30} {:>8} {:>10.3} {:>10.3}\n",
            r.name,
            r.policy,
            r.ratio(),
            r.predicted
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_names() {
        for name in LOWER_BOUND_NAMES {
            assert!(lower_bound_by_name(name).is_some(), "{name}");
        }
        assert!(lower_bound_by_name("nope").is_none());
    }

    #[test]
    fn small_constructions_beat_one() {
        // Small/fast variants of a few constructions: the scripted OPT must
        // beat the target policy.
        let r = measure_work_construction(&adversarial::nest_lower_bound(4, 16, 4)).unwrap();
        assert!(r.ratio() > 1.5, "NEST ratio {}", r.ratio());
        let r = measure_work_construction(&adversarial::bpd_lower_bound(4, 16, 500)).unwrap();
        assert!(r.ratio() > 1.3, "BPD ratio {}", r.ratio());
        let r = measure_value_construction(&adversarial::mvd_lower_bound(8, 32, 500)).unwrap();
        assert!(r.ratio() > 2.0, "MVD ratio {}", r.ratio());
    }

    #[test]
    fn lwd_upper_stress_stays_below_two() {
        let r = lwd_upper_bound_stress().unwrap();
        assert!(r.ratio() < 2.0, "Theorem 7 violated: {}", r.ratio());
        assert!(r.ratio() > 1.0);
        assert_eq!(r.predicted, 2.0);
        assert!(r.name.contains("Thm7"));
    }

    #[test]
    fn table_renders_all_rows() {
        let r = measure_work_construction(&adversarial::nest_lower_bound(4, 16, 2)).unwrap();
        let table = render_table(&[r]);
        assert!(table.contains("NEST"));
        assert!(table.contains("predicted"));
        assert_eq!(table.lines().count(), 2);
    }
}
