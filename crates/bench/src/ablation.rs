//! Ablations of the design choices DESIGN.md documents as deviations or
//! unspecified details (flush mode, LWD tie-breaking, OPT core count) and
//! of the extension policies (AWD(α), NHDT-W, MRD-strict).

use smbm_core::{
    value_policy_by_name, work_policy_by_name, AlphaWd, CappedWork, Lwd, LwdTieBreak, ValuePqOpt,
    ValueRunner, WorkPolicy, WorkPqOpt, WorkRunner,
};
use smbm_sim::{run_value, run_work, EngineConfig, ExperimentError, FlushMode, FlushPolicy};
use smbm_switch::{ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{adversarial, MmppScenario, PortMix, Trace, ValueMix};

/// One ablation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// The varied setting.
    pub variant: String,
    /// Objective score under that setting.
    pub score: u64,
    /// Ratio to the first (baseline) variant's score.
    pub relative: f64,
}

fn rows_from_scores(variants: Vec<(String, u64)>) -> Vec<AblationRow> {
    let base = variants.first().map(|&(_, s)| s).unwrap_or(1).max(1);
    variants
        .into_iter()
        .map(|(variant, score)| AblationRow {
            variant,
            score,
            relative: score as f64 / base as f64,
        })
        .collect()
}

fn standard_trace(slots: usize, seed: u64) -> (WorkSwitchConfig, Trace<smbm_switch::WorkPacket>) {
    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let scenario = MmppScenario {
        sources: 12,
        slots,
        seed,
        ..Default::default()
    };
    let trace = scenario
        .work_trace(&cfg, &PortMix::Uniform)
        .expect("valid scenario");
    (cfg, trace)
}

/// Flush-mode ablation: LWD's throughput under no flush, draining flushes,
/// and dropping flushes (period 5,000 slots).
///
/// # Errors
///
/// Propagates engine failures (none for well-formed inputs).
pub fn flush_ablation(slots: usize, seed: u64) -> Result<Vec<AblationRow>, ExperimentError> {
    let (cfg, trace) = standard_trace(slots, seed);
    let variants: [(&str, EngineConfig); 3] = [
        ("no-flush", EngineConfig::draining()),
        (
            "flush-drain",
            EngineConfig {
                flush: Some(FlushPolicy {
                    period: 5_000,
                    mode: FlushMode::Drain,
                }),
                drain_at_end: true,
            },
        ),
        (
            "flush-drop",
            EngineConfig {
                flush: Some(FlushPolicy {
                    period: 5_000,
                    mode: FlushMode::Drop,
                }),
                drain_at_end: true,
            },
        ),
    ];
    let mut scores = Vec::new();
    for (name, engine) in variants {
        let mut runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
        let score = run_work(&mut runner, &trace, &engine)?.score;
        scores.push((name.to_string(), score));
    }
    Ok(rows_from_scores(scores))
}

/// LWD tie-break ablation: max-work (paper), max-length, min-work.
///
/// # Errors
///
/// Propagates engine failures (none for well-formed inputs).
pub fn lwd_tie_break_ablation(
    slots: usize,
    seed: u64,
) -> Result<Vec<AblationRow>, ExperimentError> {
    let (cfg, trace) = standard_trace(slots, seed);
    let mut scores = Vec::new();
    for tie in [
        LwdTieBreak::MaxWork,
        LwdTieBreak::MaxLen,
        LwdTieBreak::MinWork,
    ] {
        let policy = Lwd::with_tie_break(tie);
        let name = policy.name().to_string();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let score = run_work(&mut runner, &trace, &EngineConfig::draining())?.score;
        scores.push((name, score));
    }
    Ok(rows_from_scores(scores))
}

/// OPT-surrogate sensitivity: the PQ yardstick's throughput with `n*C`
/// cores (the paper's choice) versus half and double that, showing how much
/// the reported "competitive ratio" depends on the surrogate's strength.
///
/// # Errors
///
/// Propagates engine failures (none for well-formed inputs).
pub fn opt_cores_ablation(slots: usize, seed: u64) -> Result<Vec<AblationRow>, ExperimentError> {
    let (cfg, trace) = standard_trace(slots, seed);
    let n = cfg.ports() as u32;
    let mut scores = Vec::new();
    for (name, cores) in [("nC", n), ("nC/2", (n / 2).max(1)), ("2nC", 2 * n)] {
        let mut opt = WorkPqOpt::new(cfg.buffer(), cores);
        let score = run_work(&mut opt, &trace, &EngineConfig::draining())?.score;
        scores.push((name.to_string(), score));
    }
    Ok(rows_from_scores(scores))
}

/// AWD(α) interpolation sweep: how throughput moves as the push-out score
/// slides from pure queue length (LQD, α = 0) to pure outstanding work
/// (LWD, α = 1) on congested heterogeneous traffic. Supports the paper's
/// Section III-B argument that accounting for work explicitly is what wins.
///
/// # Errors
///
/// Propagates engine failures (none for well-formed inputs).
pub fn awd_alpha_ablation(slots: usize, seed: u64) -> Result<Vec<AblationRow>, ExperimentError> {
    let (cfg, trace) = standard_trace(slots, seed);
    let mut scores = Vec::new();
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut runner = WorkRunner::new(cfg.clone(), AlphaWd::new(alpha), 1);
        let score = run_work(&mut runner, &trace, &EngineConfig::draining())?.score;
        scores.push((format!("AWD({alpha})"), score));
    }
    Ok(rows_from_scores(scores))
}

/// The paper's open problem, executed: plain NHDT versus the work-aware
/// NHDT-W on Theorem 3's adversarial trace (where NHDT collapses) and on
/// statistical MMPP traffic (where both should be comparable). Scores are
/// packets; `relative` is versus NHDT on the same trace.
///
/// # Errors
///
/// Propagates engine failures (none for well-formed inputs).
pub fn nhdt_generalization_ablation(seed: u64) -> Result<Vec<AblationRow>, ExperimentError> {
    let mut rows = Vec::new();
    // Adversarial: Theorem 3's construction.
    let c = adversarial::nhdt_lower_bound(64, 512, 4);
    let mut opt = WorkRunner::new(c.config.clone(), CappedWork::new(c.opt_caps.clone()), 1);
    let opt_score = run_work(&mut opt, &c.trace, &EngineConfig::horizon_only())?.score;
    let mut scores = vec![("thm3:OPT-script".to_string(), opt_score)];
    for name in ["NHDT", "NHDT-W", "LWD"] {
        let policy = work_policy_by_name(name).expect("registry name");
        let mut runner = WorkRunner::new(c.config.clone(), policy, 1);
        let score = run_work(&mut runner, &c.trace, &EngineConfig::horizon_only())?.score;
        scores.push((format!("thm3:{name}"), score));
    }
    rows.extend(rows_from_scores(scores));
    // Statistical: the standard MMPP point.
    let (cfg, trace) = standard_trace(50_000, seed);
    let mut scores = Vec::new();
    for name in ["NHDT", "NHDT-W", "LWD"] {
        let policy = work_policy_by_name(name).expect("registry name");
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let score = run_work(&mut runner, &trace, &EngineConfig::draining())?.score;
        scores.push((format!("mmpp:{name}"), score));
    }
    rows.extend(rows_from_scores(scores));
    Ok(rows)
}

/// MRD reading ablation: the virtual-add MRD used in this reproduction
/// versus the paper-literal MRD-strict and LQD, across three value==port
/// traffic mixes (uniform ports, cheap-heavy, value-heavy). MRD-strict's
/// buffer freeze shows up as a large score deficit.
///
/// # Errors
///
/// Propagates engine failures (none for well-formed inputs).
pub fn mrd_variants_ablation(slots: usize, seed: u64) -> Result<Vec<AblationRow>, ExperimentError> {
    let ports = 8usize;
    let buffer = 16usize;
    let cfg = ValueSwitchConfig::new(buffer, ports).expect("valid");
    let mixes: [(&str, PortMix); 3] = [
        ("uniform", PortMix::Uniform),
        (
            "cheap-heavy",
            PortMix::Weighted((1..=ports).map(|v| 1.0 / v as f64).collect()),
        ),
        (
            "value-heavy",
            PortMix::Weighted((1..=ports).map(|v| (v * v) as f64).collect()),
        ),
    ];
    let mut rows = Vec::new();
    for (label, mix) in mixes {
        let scenario = MmppScenario {
            sources: 32,
            slots,
            seed,
            ..Default::default()
        };
        let trace = scenario
            .value_trace(ports, &mix, &ValueMix::EqualsPort)
            .expect("valid scenario");
        let mut opt = ValuePqOpt::new(buffer, ports as u32);
        let opt_score = run_value(&mut opt, &trace, &EngineConfig::draining())?.score;
        let mut scores = vec![(format!("{label}:OPT(pq)"), opt_score)];
        for name in ["LQD", "MRD", "MRD-STRICT"] {
            let policy = value_policy_by_name(name).expect("registry name");
            let mut runner = ValueRunner::new(cfg, policy, 1);
            let score = run_value(&mut runner, &trace, &EngineConfig::draining())?.score;
            scores.push((format!("{label}:{name}"), score));
        }
        rows.extend(rows_from_scores(scores));
    }
    Ok(rows)
}

/// Renders ablation rows as an aligned table.
pub fn render_ablation(title: &str, rows: &[AblationRow]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>10}\n",
        "variant", "score", "relative"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>12} {:>10.4}\n",
            r.variant, r.score, r.relative
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_ablation_runs() {
        let rows = flush_ablation(4_000, 5).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].relative, 1.0);
        // Dropping flushes can only lose packets relative to draining.
        assert!(rows[2].score <= rows[1].score);
    }

    #[test]
    fn tie_break_ablation_runs() {
        let rows = lwd_tie_break_ablation(4_000, 5).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].variant, "LWD");
        for r in &rows {
            assert!(r.score > 0);
        }
    }

    #[test]
    fn opt_cores_monotone() {
        let rows = opt_cores_ablation(4_000, 5).unwrap();
        assert_eq!(rows.len(), 3);
        // More cores never transmit less.
        assert!(rows[1].score <= rows[0].score, "half cores beat nC");
        assert!(rows[2].score >= rows[0].score, "double cores lost to nC");
    }

    #[test]
    fn awd_sweep_runs_and_work_end_wins_under_heterogeneity() {
        let rows = awd_alpha_ablation(6_000, 5).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].variant, "AWD(0)");
        // The LWD end must not lose to the LQD end on heterogeneous traffic.
        assert!(rows[4].score >= rows[0].score * 99 / 100);
    }

    #[test]
    fn nhdt_generalization_repairs_theorem3() {
        let rows = nhdt_generalization_ablation(5).unwrap();
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap().score;
        assert!(
            get("thm3:NHDT-W") > 3 * get("thm3:NHDT"),
            "NHDT-W did not repair the Theorem 3 attack"
        );
        // No significant regression on statistical traffic.
        assert!(get("mmpp:NHDT-W") * 100 >= get("mmpp:NHDT") * 95);
    }

    #[test]
    fn mrd_strict_freezes() {
        let rows = mrd_variants_ablation(6_000, 5).unwrap();
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap().score;
        // The paper-literal rule loses badly against the virtual-add MRD.
        assert!(get("uniform:MRD-STRICT") < get("uniform:MRD"));
    }

    #[test]
    fn render_is_aligned() {
        let rows = vec![AblationRow {
            variant: "x".into(),
            score: 10,
            relative: 1.0,
        }];
        let s = render_ablation("t", &rows);
        assert!(s.contains("== t =="));
        assert!(s.contains("relative"));
    }
}
