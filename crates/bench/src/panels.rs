//! The nine panels of Fig. 5.
//!
//! Panel layout (matching the paper's Fig. 5 numbering):
//!
//! | # | model | swept | fixed |
//! |---|---|---|---|
//! | 1 | heterogeneous processing | `k` | `B = 64, C = 1` |
//! | 2 | heterogeneous processing | `B` | `k = 8, C = 1` |
//! | 3 | heterogeneous processing | `C` | `k = 8, B = 64` |
//! | 4 | values, uniform | `k` (max value) | `n = 8, B = 64, C = 1` |
//! | 5 | values, uniform | `B` | `k = 16, n = 8, C = 1` |
//! | 6 | values, uniform | `C` | `k = 16, n = 8, B = 64` |
//! | 7 | values == port | `k = n` | `B = 64, C = 1` |
//! | 8 | values == port | `B` | `k = n = 8, C = 1` |
//! | 9 | values == port | `C` | `k = n = 8, B = 64` |

use smbm_obs::HistogramRecorder;
use smbm_sim::{
    series_from_sweep, series_to_csv, sweep_with_jobs, EngineConfig, ExperimentError, FlushPolicy,
    Series, ValueExperiment, WorkExperiment,
};
use smbm_switch::{ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppParams, MmppScenario, PortMix, ValueMix};

/// One of the nine Fig. 5 panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Panel(u8);

impl Panel {
    /// Creates a panel handle from its Fig. 5 number.
    ///
    /// # Errors
    ///
    /// Returns `None` unless `1 <= n <= 9`.
    pub fn new(n: u8) -> Option<Panel> {
        (1..=9).contains(&n).then_some(Panel(n))
    }

    /// All nine panels.
    pub fn all() -> impl Iterator<Item = Panel> {
        (1..=9).map(Panel)
    }

    /// The Fig. 5 panel number.
    pub fn number(&self) -> u8 {
        self.0
    }

    /// The swept parameter's axis label.
    pub fn x_label(&self) -> &'static str {
        match self.0 {
            1 | 4 | 7 => "k",
            2 | 5 | 8 => "B",
            _ => "C",
        }
    }

    /// A one-line description matching the paper's caption.
    pub fn caption(&self) -> &'static str {
        match self.0 {
            1 => "required processing model: ratio vs max processing k",
            2 => "required processing model: ratio vs buffer size B",
            3 => "required processing model: ratio vs speedup C",
            4 => "value model (uniform values): ratio vs max value k",
            5 => "value model (uniform values): ratio vs buffer size B",
            6 => "value model (uniform values): ratio vs speedup C",
            7 => "value model (value==port): ratio vs max value k",
            8 => "value model (value==port): ratio vs buffer size B",
            _ => "value model (value==port): ratio vs speedup C",
        }
    }
}

/// Simulation scale: how many sources and slots back each point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelScale {
    /// A sub-second smoke scale, used by tests.
    Smoke,
    /// The default: seconds per panel, ratios within a few percent of the
    /// paper-scale run.
    Default,
    /// The paper's setting: 500 sources, 2,000,000 slots per point.
    Paper,
}

impl PanelScale {
    fn slots(&self) -> usize {
        match self {
            PanelScale::Smoke => 2_000,
            PanelScale::Default => 50_000,
            PanelScale::Paper => 2_000_000,
        }
    }

    /// MMPP sources backing the *work-model* panels. The per-source rate is
    /// fixed ([`mmpp_params`]); the source count sets the offered load
    /// relative to the switch's service capacity (`H_k` packets/slot for a
    /// contiguous work switch, `n*C` for a value switch), so the two models
    /// use different counts.
    fn work_sources(&self) -> usize {
        match self {
            PanelScale::Paper => 500,
            _ => 12,
        }
    }

    fn value_sources(&self) -> usize {
        match self {
            PanelScale::Paper => 500,
            _ => 32,
        }
    }

    /// Per-source parameters. At paper scale the per-source rate is reduced
    /// so the *aggregate* offered load stays comparable with 500 sources.
    fn mmpp_params(&self, sources_default: usize) -> MmppParams {
        let base = MmppParams {
            lambda_on: 2.0,
            p_on_to_off: 0.1,
            p_off_to_on: 1.0 / 30.0,
        };
        match self {
            PanelScale::Paper => MmppParams {
                lambda_on: base.lambda_on * sources_default as f64 / 500.0,
                ..base
            },
            _ => base,
        }
    }
}

/// Flushout period used by every panel (the paper flushes periodically but
/// does not give the period).
const FLUSH_PERIOD: u64 = 10_000;

fn engine() -> EngineConfig {
    EngineConfig {
        flush: Some(FlushPolicy::every(FLUSH_PERIOD)),
        drain_at_end: true,
    }
}

fn work_scenario(scale: PanelScale, seed: u64) -> MmppScenario {
    MmppScenario {
        sources: scale.work_sources(),
        params: scale.mmpp_params(PanelScale::Default.work_sources()),
        slots: scale.slots(),
        seed,
    }
}

fn value_scenario(scale: PanelScale, seed: u64) -> MmppScenario {
    MmppScenario {
        sources: scale.value_sources(),
        params: scale.mmpp_params(PanelScale::Default.value_sources()),
        slots: scale.slots(),
        seed,
    }
}

/// The swept x values of each panel.
pub fn panel_xs(panel: Panel, scale: PanelScale) -> Vec<f64> {
    let full: Vec<f64> = match panel.number() {
        1 => vec![2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0],
        2 | 5 | 8 => vec![16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0],
        3 | 6 | 9 => vec![1.0, 2.0, 3.0, 4.0, 6.0, 8.0],
        4 => vec![2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
        7 => vec![2.0, 4.0, 8.0, 16.0, 32.0],
        _ => unreachable!("panel numbers validated"),
    };
    if scale == PanelScale::Smoke {
        full.into_iter().take(3).collect()
    } else {
        full
    }
}

/// Runs one panel at the given scale, returning one ratio series per policy.
///
/// # Errors
///
/// Propagates [`ExperimentError`] (registry or policy-decision failures) and
/// panics on invalid internal configurations (which would be a bug in the
/// panel definitions).
pub fn run_panel(
    panel: Panel,
    scale: PanelScale,
    seed: u64,
) -> Result<Vec<Series>, ExperimentError> {
    run_panel_with_jobs(panel, scale, seed, None)
}

/// Like [`run_panel`], with an explicit cap on sweep worker threads
/// (`None` uses the machine's available parallelism; see
/// [`smbm_sim::sweep_with_jobs`]).
///
/// # Errors
///
/// See [`run_panel`].
pub fn run_panel_with_jobs(
    panel: Panel,
    scale: PanelScale,
    seed: u64,
    jobs: Option<usize>,
) -> Result<Vec<Series>, ExperimentError> {
    let xs = panel_xs(panel, scale);
    let points = sweep_with_jobs(
        &xs,
        |x| match panel_point(panel, x) {
            PanelPoint::Work { config, speedup } => run_work_point(config, speedup, scale, seed),
            PanelPoint::Value {
                config,
                speedup,
                mix,
            } => run_value_point(config, speedup, &mix, scale, seed),
        },
        jobs,
    )?;
    Ok(series_from_sweep(&points))
}

/// The experiment configuration a panel uses at one swept x value.
enum PanelPoint {
    Work {
        config: WorkSwitchConfig,
        speedup: u32,
    },
    Value {
        config: ValueSwitchConfig,
        speedup: u32,
        mix: ValueMix,
    },
}

fn panel_point(panel: Panel, x: f64) -> PanelPoint {
    match panel.number() {
        1 => {
            let k = x as u32;
            PanelPoint::Work {
                config: WorkSwitchConfig::contiguous(k, 64.max(k as usize)).expect("valid"),
                speedup: 1,
            }
        }
        2 => PanelPoint::Work {
            config: WorkSwitchConfig::contiguous(8, x as usize).expect("valid"),
            speedup: 1,
        },
        3 => PanelPoint::Work {
            config: WorkSwitchConfig::contiguous(8, 64).expect("valid"),
            speedup: x as u32,
        },
        4 => PanelPoint::Value {
            config: ValueSwitchConfig::new(64, 8).expect("valid"),
            speedup: 1,
            mix: ValueMix::Uniform { max: x as u64 },
        },
        5 => PanelPoint::Value {
            config: ValueSwitchConfig::new(x as usize, 8).expect("valid"),
            speedup: 1,
            mix: ValueMix::Uniform { max: 16 },
        },
        6 => PanelPoint::Value {
            config: ValueSwitchConfig::new(64, 8).expect("valid"),
            speedup: x as u32,
            mix: ValueMix::Uniform { max: 16 },
        },
        7 => PanelPoint::Value {
            config: ValueSwitchConfig::new(64.max(x as usize), x as usize).expect("valid"),
            speedup: 1,
            mix: ValueMix::EqualsPort,
        },
        8 => PanelPoint::Value {
            config: ValueSwitchConfig::new(x as usize, 8).expect("valid"),
            speedup: 1,
            mix: ValueMix::EqualsPort,
        },
        9 => PanelPoint::Value {
            config: ValueSwitchConfig::new(64, 8).expect("valid"),
            speedup: x as u32,
            mix: ValueMix::EqualsPort,
        },
        _ => unreachable!("panel numbers validated"),
    }
}

/// Runs one *representative* point of a panel (the median swept x) with a
/// [`HistogramRecorder`] attached to every roster policy and returns
/// `(policy, metrics JSON)` pairs in roster order — the per-policy metric
/// sidecars behind `fig5 --metrics-dir`. Observation does not change scores,
/// so this is a diagnostics add-on, not part of the ratio pipeline.
///
/// # Errors
///
/// See [`run_panel`].
pub fn panel_point_metrics(
    panel: Panel,
    scale: PanelScale,
    seed: u64,
) -> Result<Vec<(String, String)>, ExperimentError> {
    let xs = panel_xs(panel, scale);
    let x = xs[xs.len() / 2];
    match panel_point(panel, x) {
        PanelPoint::Work { config, speedup } => {
            let trace = work_scenario(scale, seed)
                .work_trace(&config, &PortMix::Uniform)
                .expect("valid scenario parameters");
            let mut exp = WorkExperiment::full_roster(config, speedup);
            exp.engine = engine();
            let mut hists = vec![HistogramRecorder::new(); exp.policies.len()];
            exp.run_observed(&trace, &mut hists)?;
            Ok(pair_metrics(&exp.policies, &hists))
        }
        PanelPoint::Value {
            config,
            speedup,
            mix,
        } => {
            let trace = value_scenario(scale, seed)
                .value_trace(config.ports(), &PortMix::Uniform, &mix)
                .expect("valid scenario parameters");
            let mut exp = ValueExperiment::full_roster(config, speedup);
            exp.engine = engine();
            let mut hists = vec![HistogramRecorder::new(); exp.policies.len()];
            exp.run_observed(&trace, &mut hists)?;
            Ok(pair_metrics(&exp.policies, &hists))
        }
    }
}

fn pair_metrics(policies: &[String], hists: &[HistogramRecorder]) -> Vec<(String, String)> {
    policies
        .iter()
        .cloned()
        .zip(hists.iter().map(HistogramRecorder::to_json))
        .collect()
}

fn run_work_point(
    cfg: WorkSwitchConfig,
    speedup: u32,
    scale: PanelScale,
    seed: u64,
) -> Result<smbm_sim::ExperimentReport, ExperimentError> {
    let trace = work_scenario(scale, seed)
        .work_trace(&cfg, &PortMix::Uniform)
        .expect("valid scenario parameters");
    let mut exp = WorkExperiment::full_roster(cfg, speedup);
    exp.engine = engine();
    exp.run(&trace)
}

fn run_value_point(
    cfg: ValueSwitchConfig,
    speedup: u32,
    mix: &ValueMix,
    scale: PanelScale,
    seed: u64,
) -> Result<smbm_sim::ExperimentReport, ExperimentError> {
    let trace = value_scenario(scale, seed)
        .value_trace(cfg.ports(), &PortMix::Uniform, mix)
        .expect("valid scenario parameters");
    let mut exp = ValueExperiment::full_roster(cfg, speedup);
    exp.engine = engine();
    exp.run(&trace)
}

/// Runs a panel `repeats` times with consecutive seeds and returns the
/// per-policy series of *mean* ratios, plus the largest observed relative
/// half-spread `(max-min)/(2*mean)` across all points (a cheap dispersion
/// diagnostic reported in the CSV header).
///
/// # Errors
///
/// See [`run_panel`].
pub fn run_panel_averaged(
    panel: Panel,
    scale: PanelScale,
    seed: u64,
    repeats: u32,
) -> Result<(Vec<Series>, f64), ExperimentError> {
    run_panel_averaged_with_jobs(panel, scale, seed, repeats, None)
}

/// Like [`run_panel_averaged`], with an explicit cap on sweep worker
/// threads (`None` uses the machine's available parallelism).
///
/// # Errors
///
/// See [`run_panel`].
pub fn run_panel_averaged_with_jobs(
    panel: Panel,
    scale: PanelScale,
    seed: u64,
    repeats: u32,
    jobs: Option<usize>,
) -> Result<(Vec<Series>, f64), ExperimentError> {
    assert!(repeats >= 1, "need at least one repeat");
    let mut runs: Vec<Vec<Series>> = Vec::with_capacity(repeats as usize);
    for r in 0..repeats {
        runs.push(run_panel_with_jobs(
            panel,
            scale,
            seed.wrapping_add(u64::from(r)),
            jobs,
        )?);
    }
    let first = &runs[0];
    let mut spread_max = 0.0f64;
    let averaged = first
        .iter()
        .enumerate()
        .map(|(si, s)| Series {
            label: s.label.clone(),
            points: s
                .points
                .iter()
                .enumerate()
                .map(|(pi, &(x, _))| {
                    let ys: Vec<f64> = runs.iter().map(|run| run[si].points[pi].1).collect();
                    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
                    let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
                    let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    if mean > 0.0 {
                        spread_max = spread_max.max((hi - lo) / (2.0 * mean));
                    }
                    (x, mean)
                })
                .collect(),
        })
        .collect();
    Ok((averaged, spread_max))
}

/// Runs a panel and renders it as CSV with a caption header comment.
/// With `repeats > 1` the values are means over consecutive seeds and the
/// header reports the worst relative half-spread observed.
///
/// # Errors
///
/// See [`run_panel`].
pub fn render_panel_averaged(
    panel: Panel,
    scale: PanelScale,
    seed: u64,
    repeats: u32,
) -> Result<String, ExperimentError> {
    let (series, spread) = run_panel_averaged(panel, scale, seed, repeats)?;
    let mut out = format!(
        "# Fig.5({}) {} [scale {:?}, seed {}, repeats {}, max half-spread {:.4}]\n",
        panel.number(),
        panel.caption(),
        scale,
        seed,
        repeats,
        spread
    );
    out.push_str(&series_to_csv(panel.x_label(), &series));
    Ok(out)
}

/// Runs a panel and renders it as CSV with a caption header comment.
///
/// # Errors
///
/// See [`run_panel`].
pub fn render_panel(panel: Panel, scale: PanelScale, seed: u64) -> Result<String, ExperimentError> {
    let series = run_panel(panel, scale, seed)?;
    let mut out = format!(
        "# Fig.5({}) {} [scale {:?}, seed {}]\n",
        panel.number(),
        panel.caption(),
        scale,
        seed
    );
    out.push_str(&series_to_csv(panel.x_label(), &series));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_validation() {
        assert!(Panel::new(0).is_none());
        assert!(Panel::new(10).is_none());
        assert_eq!(Panel::new(5).unwrap().number(), 5);
        assert_eq!(Panel::all().count(), 9);
    }

    #[test]
    fn labels_and_captions() {
        assert_eq!(Panel::new(1).unwrap().x_label(), "k");
        assert_eq!(Panel::new(5).unwrap().x_label(), "B");
        assert_eq!(Panel::new(9).unwrap().x_label(), "C");
        for p in Panel::all() {
            assert!(!p.caption().is_empty());
        }
    }

    #[test]
    fn xs_are_nonempty_and_increasing() {
        for p in Panel::all() {
            for scale in [PanelScale::Smoke, PanelScale::Default] {
                let xs = panel_xs(p, scale);
                assert!(!xs.is_empty());
                assert!(xs.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn smoke_scale_truncates() {
        assert_eq!(panel_xs(Panel::new(2).unwrap(), PanelScale::Smoke).len(), 3);
    }

    #[test]
    fn work_panel_smoke_runs() {
        let series = run_panel(Panel::new(1).unwrap(), PanelScale::Smoke, 7).unwrap();
        assert_eq!(series.len(), smbm_core::WORK_POLICY_NAMES.len());
        for s in &series {
            assert_eq!(s.points.len(), 3);
            for &(_, ratio) in &s.points {
                assert!(ratio.is_finite() && ratio > 0.5, "{}: {ratio}", s.label);
            }
        }
    }

    #[test]
    fn value_panel_smoke_runs() {
        let series = run_panel(Panel::new(7).unwrap(), PanelScale::Smoke, 7).unwrap();
        assert_eq!(series.len(), smbm_core::VALUE_POLICY_NAMES.len());
    }

    #[test]
    fn job_cap_does_not_change_results() {
        let p = Panel::new(1).unwrap();
        let default = run_panel(p, PanelScale::Smoke, 7).unwrap();
        let single = run_panel_with_jobs(p, PanelScale::Smoke, 7, Some(1)).unwrap();
        assert_eq!(default, single);
        let (avg_default, _) = run_panel_averaged(p, PanelScale::Smoke, 7, 2).unwrap();
        let (avg_single, _) =
            run_panel_averaged_with_jobs(p, PanelScale::Smoke, 7, 2, Some(1)).unwrap();
        assert_eq!(avg_default, avg_single);
    }

    #[test]
    fn averaging_reduces_to_single_run_for_one_repeat() {
        let p = Panel::new(1).unwrap();
        let single = run_panel(p, PanelScale::Smoke, 7).unwrap();
        let (avg, spread) = run_panel_averaged(p, PanelScale::Smoke, 7, 1).unwrap();
        assert_eq!(avg, single);
        assert_eq!(spread, 0.0);
    }

    #[test]
    fn averaging_over_seeds_stays_near_each_run() {
        let p = Panel::new(1).unwrap();
        let (avg, spread) = run_panel_averaged(p, PanelScale::Smoke, 7, 3).unwrap();
        assert_eq!(avg.len(), smbm_core::WORK_POLICY_NAMES.len());
        assert!((0.0..0.5).contains(&spread), "spread {spread}");
        for s in &avg {
            for &(_, y) in &s.points {
                assert!(y.is_finite() && y > 0.5);
            }
        }
    }

    #[test]
    fn point_metrics_cover_the_roster() {
        // One work panel and one value panel; every policy gets a sidecar.
        for (panel, names) in [
            (1u8, smbm_core::WORK_POLICY_NAMES),
            (7, smbm_core::VALUE_POLICY_NAMES),
        ] {
            let metrics =
                panel_point_metrics(Panel::new(panel).unwrap(), PanelScale::Smoke, 7).unwrap();
            assert_eq!(metrics.len(), names.len());
            for ((policy, json), expect) in metrics.iter().zip(names) {
                assert_eq!(policy, expect);
                assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
                for key in ["\"drops\"", "\"latency\"", "\"p99\"", "\"occupancy\""] {
                    assert!(json.contains(key), "missing {key} in {json}");
                }
            }
        }
    }

    #[test]
    fn render_includes_caption() {
        let csv = render_panel(Panel::new(4).unwrap(), PanelScale::Smoke, 7).unwrap();
        assert!(csv.starts_with("# Fig.5(4)"));
        assert!(csv.contains("k,"));
    }
}
