//! Criterion gate for the SPSC ingress ring: items moved through a ring
//! per second, the lock-free `smbm-spsc` ring vs the retired Mutex+Condvar
//! ring (kept as `smbm_runtime::reference`, the behavior oracle). Every
//! shape runs against both implementations under the same labels so the
//! CI gate can assert the lock-free ring actually beats the lock.
//!
//! Measured shapes (`DEPTH`-item ring, `DEPTH` items per iteration):
//!
//! * `ring-bulk/scalar/{lockfree,mutex}` — a `try_push` per item, then a
//!   `try_pop` per item: the pre-bulk receive-loop cost model;
//! * `ring-bulk/bulk/{lockfree,mutex}` — one `try_push_bulk` of the whole
//!   slice, one `pop_bulk` claim of the backlog (buffer reused);
//! * `ring-bulk/batched-32/{lockfree,mutex}` — the slice published as
//!   32-item batches, the shape `serve_socket` stages per receive burst;
//! * `ring-pingpong/{lockfree,mutex}` — a true two-thread transfer: the
//!   bench thread pushes `DEPTH` items with the blocking scalar API while
//!   an echo thread pops each one and acks it back on a second ring. This
//!   is the contended cross-core path the single-threaded shapes miss —
//!   real wakes, real cache-line bouncing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::thread;
use std::time::Duration;

const DEPTH: usize = 1024;
const BURST: usize = 32;

/// Expands the three single-threaded shapes for one ring implementation.
/// `$ring` is a path to a `fn(usize) -> (Producer<T>, Consumer<T>)`
/// constructor; both implementations expose the same op surface, so the
/// bodies are textually identical.
macro_rules! single_thread_shapes {
    ($group:expr, $impl_label:expr, $ring:path) => {{
        use $ring as mk;

        $group.bench_function(BenchmarkId::new("scalar", $impl_label), |b| {
            let (tx, rx) = mk::<u64>(DEPTH);
            b.iter(|| {
                for i in 0..DEPTH as u64 {
                    tx.try_push(black_box(i)).expect("ring has room");
                }
                let mut sum = 0u64;
                while let TryPop::Item(v) = rx.try_pop() {
                    sum += v;
                }
                sum
            })
        });

        $group.bench_function(BenchmarkId::new("bulk", $impl_label), |b| {
            let (tx, rx) = mk::<u64>(DEPTH);
            let items: Vec<u64> = (0..DEPTH as u64).collect();
            let mut out: Vec<u64> = Vec::with_capacity(DEPTH);
            b.iter(|| {
                tx.try_push_bulk(black_box(items.clone()))
                    .expect("ring has room");
                out.clear();
                let claimed = rx.pop_bulk(&mut out, DEPTH);
                black_box(claimed.popped)
            })
        });

        $group.bench_function(BenchmarkId::new("batched-32", $impl_label), |b| {
            let (tx, rx) = mk::<u64>(DEPTH);
            let batch: Vec<u64> = (0..BURST as u64).collect();
            let mut out: Vec<u64> = Vec::with_capacity(DEPTH);
            b.iter(|| {
                for _ in 0..DEPTH / BURST {
                    tx.try_push_bulk(black_box(batch.clone()))
                        .expect("ring has room");
                }
                out.clear();
                let claimed = rx.pop_bulk(&mut out, DEPTH);
                black_box(claimed.popped)
            })
        });
    }};
}

/// Two-thread blocking ping-pong for one ring implementation: an echo
/// thread pops every item off the forward ring and pushes it onto the ack
/// ring; the bench thread pushes `DEPTH` items and pops `DEPTH` acks per
/// iteration, all through the blocking scalar API. The rings are sized to
/// the transfer so steady state exercises the data path and the wake
/// protocol rather than spending the whole iteration parked.
macro_rules! pingpong_shape {
    ($group:expr, $impl_label:expr, $ring:path) => {{
        use $ring as mk;

        $group.bench_function(BenchmarkId::from_parameter($impl_label), |b| {
            let (fwd_tx, fwd_rx) = mk::<u64>(DEPTH);
            let (ack_tx, ack_rx) = mk::<u64>(DEPTH);
            let echo = thread::spawn(move || {
                while let Some(v) = fwd_rx.pop() {
                    if ack_tx.push(v).is_err() {
                        break;
                    }
                }
            });
            b.iter(|| {
                for i in 0..DEPTH as u64 {
                    fwd_tx.push(black_box(i)).expect("echo thread is alive");
                }
                let mut sum = 0u64;
                for _ in 0..DEPTH {
                    sum += ack_rx.pop().expect("echo thread acks every item");
                }
                sum
            });
            fwd_tx.close();
            echo.join().expect("echo thread exits cleanly");
        });
    }};
}

fn bench_ring_bulk(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring-bulk");
    group.throughput(Throughput::Elements(DEPTH as u64));
    {
        use smbm_runtime::TryPop;
        single_thread_shapes!(group, "lockfree", smbm_runtime::ring);
    }
    {
        use smbm_runtime::reference::TryPop;
        single_thread_shapes!(group, "mutex", smbm_runtime::reference::ring);
    }
    group.finish();
}

fn bench_ring_pingpong(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring-pingpong");
    group.throughput(Throughput::Elements(DEPTH as u64));
    pingpong_shape!(group, "lockfree", smbm_runtime::ring);
    pingpong_shape!(group, "mutex", smbm_runtime::reference::ring);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_ring_bulk, bench_ring_pingpong
}
criterion_main!(benches);
