//! Criterion gate for the SPSC ring's bulk operations: items moved through
//! a ring per second, scalar ops vs the one-lock bulk publish/claim the
//! batched ingress hot path runs on. The acceptance floor is that the bulk
//! path moves >= 10M items/s through a full ring cycle single-threaded
//! (and, the point of the change, beats the scalar loop — the bulk ops pay
//! one lock round-trip per slice where the scalar loop pays one per item).
//!
//! Measured shapes (`DEPTH`-item ring, `DEPTH` items per iteration):
//!
//! * `scalar/push-pop` — a `try_push` per item, then a `try_pop` per item:
//!   the pre-bulk receive-loop cost model;
//! * `bulk/push-pop` — one `try_push_bulk` of the whole slice, one
//!   `pop_bulk` claim of the backlog (buffer reused across iterations);
//! * `bulk/batched-32` — the slice published as 32-item batches, the shape
//!   `serve_socket` actually stages per receive burst.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use smbm_runtime::{ring, TryPop};

const DEPTH: usize = 1024;
const BURST: usize = 32;

fn bench_ring_bulk(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring-bulk");
    group.throughput(Throughput::Elements(DEPTH as u64));

    group.bench_function(BenchmarkId::new("scalar", "push-pop"), |b| {
        let (tx, rx) = ring::<u64>(DEPTH);
        b.iter(|| {
            for i in 0..DEPTH as u64 {
                tx.try_push(black_box(i)).expect("ring has room");
            }
            let mut sum = 0u64;
            while let TryPop::Item(v) = rx.try_pop() {
                sum += v;
            }
            sum
        })
    });

    group.bench_function(BenchmarkId::new("bulk", "push-pop"), |b| {
        let (tx, rx) = ring::<u64>(DEPTH);
        let items: Vec<u64> = (0..DEPTH as u64).collect();
        let mut out: Vec<u64> = Vec::with_capacity(DEPTH);
        b.iter(|| {
            tx.try_push_bulk(black_box(items.clone()))
                .expect("ring has room");
            out.clear();
            let claimed = rx.pop_bulk(&mut out, DEPTH);
            black_box(claimed.popped)
        })
    });

    group.bench_function(BenchmarkId::new("bulk", "batched-32"), |b| {
        let (tx, rx) = ring::<u64>(DEPTH);
        let batch: Vec<u64> = (0..BURST as u64).collect();
        let mut out: Vec<u64> = Vec::with_capacity(DEPTH);
        b.iter(|| {
            for _ in 0..DEPTH / BURST {
                tx.try_push_bulk(black_box(batch.clone()))
                    .expect("ring has room");
            }
            out.clear();
            let claimed = rx.pop_bulk(&mut out, DEPTH);
            black_box(claimed.popped)
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_ring_bulk
}
criterion_main!(benches);
