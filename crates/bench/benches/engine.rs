//! Criterion benchmarks of the simulation substrate itself: slot-loop
//! throughput, OPT surrogates, trace generation, and exact-OPT search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use smbm_core::WorkSystem;
use smbm_core::{exact_work_opt, Lwd, Mrd, ValuePqOpt, ValueRunner, WorkPqOpt, WorkRunner};
use smbm_obs::HistogramRecorder;
use smbm_sim::{run_value, run_work, run_work_observed, EngineConfig};
use smbm_switch::{PortId, ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

fn engine_slot_throughput(c: &mut Criterion) {
    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let scenario = MmppScenario {
        sources: 12,
        slots: 5_000,
        seed: 3,
        ..Default::default()
    };
    let trace = scenario
        .work_trace(&cfg, &PortMix::Uniform)
        .expect("valid scenario");
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(trace.slots() as u64));
    group.bench_function("lwd-slot-loop", |b| {
        b.iter(|| {
            let mut runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
            let s = run_work(&mut runner, &trace, &EngineConfig::horizon_only())
                .expect("LWD never errs");
            black_box(s.score)
        });
    });
    group.bench_function("pq-opt-slot-loop", |b| {
        b.iter(|| {
            let mut opt = WorkPqOpt::new(64, 8);
            let s =
                run_work(&mut opt, &trace, &EngineConfig::horizon_only()).expect("OPT never errs");
            black_box(s.score)
        });
    });
    // Fig. 5-representative scale: n = 64 ports, shared buffer, and the
    // paper's 500-source MMPP configuration (solidly overloaded, so victim
    // selection runs on most arrivals).
    let cfg64 = WorkSwitchConfig::contiguous(64, 512).expect("valid");
    let scenario64 = MmppScenario {
        sources: 500,
        slots: 2_000,
        seed: 7,
        ..Default::default()
    };
    let trace64 = scenario64
        .work_trace(&cfg64, &PortMix::Uniform)
        .expect("valid scenario");
    group.throughput(Throughput::Elements(trace64.slots() as u64));
    group.bench_function("lwd-slot-loop-n64", |b| {
        b.iter(|| {
            let mut runner = WorkRunner::new(cfg64.clone(), Lwd::new(), 1);
            let s = run_work(&mut runner, &trace64, &EngineConfig::horizon_only())
                .expect("LWD never errs");
            black_box(s.score)
        });
    });
    group.finish();
}

fn value_engine_slot_throughput(c: &mut Criterion) {
    let cfg = ValueSwitchConfig::new(64, 8).expect("valid");
    let scenario = MmppScenario {
        sources: 32,
        slots: 5_000,
        seed: 3,
        ..Default::default()
    };
    let trace = scenario
        .value_trace(8, &PortMix::Uniform, &ValueMix::Uniform { max: 16 })
        .expect("valid scenario");
    let mut group = c.benchmark_group("value-engine");
    group.throughput(Throughput::Elements(trace.slots() as u64));
    group.bench_function("mrd-slot-loop", |b| {
        b.iter(|| {
            let mut runner = ValueRunner::new(cfg, Mrd::new(), 1);
            let s = run_value(&mut runner, &trace, &EngineConfig::horizon_only())
                .expect("MRD never errs");
            black_box(s.score)
        });
    });
    group.bench_function("value-pq-opt-slot-loop", |b| {
        b.iter(|| {
            let mut opt = ValuePqOpt::new(64, 8);
            let s =
                run_value(&mut opt, &trace, &EngineConfig::horizon_only()).expect("OPT never errs");
            black_box(s.score)
        });
    });
    // Fig. 5-representative scale: n = 64 ports, shared buffer, and the
    // paper's 500-source MMPP configuration (solidly overloaded).
    let cfg64 = ValueSwitchConfig::new(512, 64).expect("valid");
    let scenario64 = MmppScenario {
        sources: 500,
        slots: 2_000,
        seed: 7,
        ..Default::default()
    };
    let trace64 = scenario64
        .value_trace(64, &PortMix::Uniform, &ValueMix::Uniform { max: 16 })
        .expect("valid scenario");
    group.throughput(Throughput::Elements(trace64.slots() as u64));
    group.bench_function("mrd-slot-loop-n64", |b| {
        b.iter(|| {
            let mut runner = ValueRunner::new(cfg64, Mrd::new(), 1);
            let s = run_value(&mut runner, &trace64, &EngineConfig::horizon_only())
                .expect("MRD never errs");
            black_box(s.score)
        });
    });
    group.finish();
}

/// Indexed victim selection vs. the retained full-scan oracle, at the
/// Fig. 5-representative n = 64 scale where the O(n) scan per arrival is
/// most expensive. `*-indexed` forces the incremental `ScoreIndex` (what
/// the registry default auto-selects at this port count); `*-scan` is the
/// original linear scan (`Policy::scan()`).
fn slab_index_vs_scan(c: &mut Criterion) {
    let cfg64 = WorkSwitchConfig::contiguous(64, 512).expect("valid");
    let scenario64 = MmppScenario {
        sources: 500,
        slots: 2_000,
        seed: 7,
        ..Default::default()
    };
    let work_trace = scenario64
        .work_trace(&cfg64, &PortMix::Uniform)
        .expect("valid scenario");
    let vcfg64 = ValueSwitchConfig::new(512, 64).expect("valid");
    let value_trace = scenario64
        .value_trace(64, &PortMix::Uniform, &ValueMix::Uniform { max: 16 })
        .expect("valid scenario");

    let mut group = c.benchmark_group("slab");
    group.throughput(Throughput::Elements(work_trace.slots() as u64));
    group.bench_function("lwd-n64-indexed", |b| {
        b.iter(|| {
            let mut runner = WorkRunner::new(cfg64.clone(), Lwd::indexed(), 1);
            let s = run_work(&mut runner, &work_trace, &EngineConfig::horizon_only())
                .expect("LWD never errs");
            black_box(s.score)
        });
    });
    group.bench_function("lwd-n64-scan", |b| {
        b.iter(|| {
            let mut runner = WorkRunner::new(cfg64.clone(), Lwd::scan(), 1);
            let s = run_work(&mut runner, &work_trace, &EngineConfig::horizon_only())
                .expect("LWD never errs");
            black_box(s.score)
        });
    });
    group.bench_function("mrd-n64-indexed", |b| {
        b.iter(|| {
            let mut runner = ValueRunner::new(vcfg64, Mrd::indexed(), 1);
            let s = run_value(&mut runner, &value_trace, &EngineConfig::horizon_only())
                .expect("MRD never errs");
            black_box(s.score)
        });
    });
    group.bench_function("mrd-n64-scan", |b| {
        b.iter(|| {
            let mut runner = ValueRunner::new(vcfg64, Mrd::scan(), 1);
            let s = run_value(&mut runner, &value_trace, &EngineConfig::horizon_only())
                .expect("MRD never errs");
            black_box(s.score)
        });
    });
    group.finish();
}

/// The engine's observer hooks must be free when unused: `run_work` with the
/// default `NullObserver` against a hand-rolled replica of the
/// pre-instrumentation slot loop (same phases, no hooks), plus the fully
/// instrumented run for scale. The first two must stay within ~2% of each
/// other.
fn observer_overhead(c: &mut Criterion) {
    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let scenario = MmppScenario {
        sources: 12,
        slots: 5_000,
        seed: 3,
        ..Default::default()
    };
    let trace = scenario
        .work_trace(&cfg, &PortMix::Uniform)
        .expect("valid scenario");
    let mut group = c.benchmark_group("observer-overhead");
    group.throughput(Throughput::Elements(trace.slots() as u64));
    group.bench_function("null-observer", |b| {
        b.iter(|| {
            let mut runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
            let s = run_work(&mut runner, &trace, &EngineConfig::horizon_only())
                .expect("LWD never errs");
            black_box(s.score)
        });
    });
    group.bench_function("hand-rolled-baseline", |b| {
        b.iter(|| {
            let mut runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
            let mut slots = 0u64;
            let mut occ_sum = 0u64;
            let mut occ_max = 0usize;
            for burst in trace.iter() {
                for &pkt in burst {
                    let _ = runner.offer(pkt).expect("LWD never errs");
                }
                runner.transmission_phase();
                runner.end_slot();
                slots += 1;
                let occ = runner.occupancy();
                occ_sum += occ as u64;
                occ_max = occ_max.max(occ);
            }
            black_box((WorkSystem::transmitted(&runner), slots, occ_sum, occ_max))
        });
    });
    group.bench_function("histogram-recorder", |b| {
        b.iter(|| {
            let mut runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
            let mut hist = HistogramRecorder::new();
            let s = run_work_observed(
                &mut runner,
                &trace,
                &EngineConfig::horizon_only(),
                &mut hist,
            )
            .expect("LWD never errs");
            black_box((s.score, hist.latency().p99()))
        });
    });
    group.finish();
}

fn trace_generation(c: &mut Criterion) {
    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let mut group = c.benchmark_group("trace-generation");
    for sources in [10usize, 100, 500] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sources),
            &sources,
            |b, &sources| {
                let scenario = MmppScenario {
                    sources,
                    slots: 2_000,
                    seed: 4,
                    ..Default::default()
                };
                b.iter(|| {
                    let t = scenario
                        .work_trace(&cfg, &PortMix::Uniform)
                        .expect("valid scenario");
                    black_box(t.arrivals())
                });
            },
        );
    }
    group.finish();
}

fn exact_opt_search(c: &mut Criterion) {
    let cfg = WorkSwitchConfig::contiguous(2, 4).expect("valid");
    // 16 arrivals over 4 slots: a realistic test-suite-sized instance.
    let trace: Vec<Vec<PortId>> = (0..4)
        .map(|_| {
            vec![
                PortId::new(0),
                PortId::new(1),
                PortId::new(0),
                PortId::new(1),
            ]
        })
        .collect();
    c.bench_function("exact-work-opt-16-arrivals", |b| {
        b.iter(|| black_box(exact_work_opt(&cfg, 1, &trace).expect("small instance")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = engine_slot_throughput,
        value_engine_slot_throughput,
        slab_index_vs_scan,
        observer_overhead,
        trace_generation,
        exact_opt_search
}
criterion_main!(benches);
