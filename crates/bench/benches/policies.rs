//! Criterion micro-benchmarks: per-arrival admission cost of every policy.
//!
//! Each iteration replays a pre-generated congested MMPP burst sequence
//! against a policy, measuring the end-to-end cost of the arrival path
//! (decision + buffer mutation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use smbm_core::{value_policy_by_name, work_policy_by_name, ValueRunner, WorkRunner};
use smbm_sim::{run_value, run_work, EngineConfig};
use smbm_switch::{ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

fn work_policies(c: &mut Criterion) {
    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let scenario = MmppScenario {
        sources: 12,
        slots: 2_000,
        seed: 1,
        ..Default::default()
    };
    let trace = scenario
        .work_trace(&cfg, &PortMix::Uniform)
        .expect("valid scenario");
    let arrivals = trace.arrivals() as u64;
    let mut group = c.benchmark_group("work-policy-arrival");
    group.throughput(Throughput::Elements(arrivals));
    for name in smbm_core::WORK_POLICY_NAMES {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, name| {
            b.iter(|| {
                let policy = work_policy_by_name(name).expect("registry name");
                let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
                let s = run_work(&mut runner, &trace, &EngineConfig::horizon_only())
                    .expect("bundled policies never err");
                black_box(s.score)
            });
        });
    }
    group.finish();
}

fn value_policies(c: &mut Criterion) {
    let cfg = ValueSwitchConfig::new(64, 8).expect("valid");
    let scenario = MmppScenario {
        sources: 32,
        slots: 2_000,
        seed: 1,
        ..Default::default()
    };
    let trace = scenario
        .value_trace(8, &PortMix::Uniform, &ValueMix::Uniform { max: 16 })
        .expect("valid scenario");
    let arrivals = trace.arrivals() as u64;
    let mut group = c.benchmark_group("value-policy-arrival");
    group.throughput(Throughput::Elements(arrivals));
    for name in smbm_core::VALUE_POLICY_NAMES {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, name| {
            b.iter(|| {
                let policy = value_policy_by_name(name).expect("registry name");
                let mut runner = ValueRunner::new(cfg, policy, 1);
                let s = run_value(&mut runner, &trace, &EngineConfig::horizon_only())
                    .expect("bundled policies never err");
                black_box(s.score)
            });
        });
    }
    group.finish();
}

fn lwd_scaling_with_ports(c: &mut Criterion) {
    // LWD's victim scan is O(n); confirm the per-arrival cost scales.
    let mut group = c.benchmark_group("lwd-port-scaling");
    for k in [4u32, 16, 64] {
        let cfg = WorkSwitchConfig::contiguous(k, 4 * k as usize).expect("valid");
        let scenario = MmppScenario {
            sources: 12,
            slots: 1_000,
            seed: 2,
            ..Default::default()
        };
        let trace = scenario
            .work_trace(&cfg, &PortMix::Uniform)
            .expect("valid scenario");
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut runner = WorkRunner::new(cfg.clone(), smbm_core::Lwd::new(), 1);
                let s = run_work(&mut runner, &trace, &EngineConfig::horizon_only())
                    .expect("LWD never errs");
                black_box(s.score)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Each iteration replays a full multi-thousand-slot trace, so a handful
    // of samples with a short measurement window gives stable numbers
    // without multi-minute runs on small machines.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = work_policies, value_policies, lwd_scaling_with_ports
}
criterion_main!(benches);
