//! Criterion benchmarks of the live datapath: end-to-end packets/sec
//! through ingress rings, admission control, and transmission, at the
//! Fig. 5-representative n = 64 scale, sharded 1/2/4 ways.
//!
//! Feeds are pregenerated outside the measured closure, so iterations time
//! only datapath work (thread spawn, ring transfer, admission,
//! transmission, drain) — never MMPP synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use smbm_core::{Lwd, WorkRunner};
use smbm_runtime::{RuntimeBuilder, RuntimeConfig, ShardConfig, VirtualClock, WorkService};
use smbm_switch::{WorkPacket, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix};

fn runtime_throughput(c: &mut Criterion) {
    let cfg = WorkSwitchConfig::contiguous(64, 512).expect("valid");
    let mut group = c.benchmark_group("runtime");
    for shards in [1usize, 2, 4] {
        // One pregenerated feed per shard, distinct seeds.
        let feeds: Vec<Vec<Vec<WorkPacket>>> = (0..shards)
            .map(|s| {
                let scenario = MmppScenario {
                    sources: 500,
                    slots: 2_000,
                    seed: 7 + s as u64,
                    ..Default::default()
                };
                scenario
                    .work_trace(&cfg, &PortMix::Uniform)
                    .expect("valid scenario")
                    .batches(256)
                    .collect()
            })
            .collect();
        let total: u64 = feeds.iter().flatten().map(|b| b.len() as u64).sum();
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(BenchmarkId::new("lwd-n64", shards), &feeds, |b, feeds| {
            b.iter(|| {
                let mut builder = RuntimeBuilder::new(RuntimeConfig {
                    ring_capacity: 64,
                    shard: ShardConfig::freerun(),
                    ..RuntimeConfig::default()
                });
                for feed in feeds.clone() {
                    let cfg = cfg.clone();
                    let id = builder.add_shard(move || {
                        WorkService::new(WorkRunner::new(cfg.clone(), Lwd::new(), 1))
                    });
                    builder.add_producer(id, move |handle| {
                        for batch in feed {
                            if !handle.send(batch) {
                                break;
                            }
                        }
                    });
                }
                let report = builder.run(|_| VirtualClock::new());
                black_box((report.score(), report.counters().arrived()))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = runtime_throughput
}
criterion_main!(benches);
