//! Criterion gate for the wire codec: single-thread decode throughput of
//! full data datagrams, in frames (packets) per second. The acceptance
//! floor is 5M frames/s decoded on one thread — the decode path is what a
//! socket's receive loop spends its budget on, so this bounds per-socket
//! ingest before any ring or switch work happens.
//!
//! Encode is benched alongside for the netgen client's sake, and decode is
//! measured both with the trivial check and with the real work-model
//! admission check the server installs (a bounds-checked table lookup per
//! frame), so the gate reflects what `serve --listen` actually runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use smbm_net::{decode, encode_data, Datagram};
use smbm_switch::{PortId, Value, ValuePacket, WorkPacket, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

const PORTS: usize = 64;
const BATCH: usize = 256;

fn work_datagrams(cfg: &WorkSwitchConfig) -> Vec<Vec<u8>> {
    MmppScenario {
        sources: 200,
        slots: 2_000,
        seed: 11,
        ..Default::default()
    }
    .work_trace(cfg, &PortMix::Uniform)
    .expect("valid scenario")
    .batches(BATCH)
    .map(|batch| encode_data(0, &batch))
    .collect()
}

fn value_datagrams() -> Vec<Vec<u8>> {
    MmppScenario {
        sources: 200,
        slots: 2_000,
        seed: 13,
        ..Default::default()
    }
    .value_trace(PORTS, &PortMix::Uniform, &ValueMix::Uniform { max: 100 })
    .expect("valid scenario")
    .batches(BATCH)
    .map(|batch| encode_data(0, &batch))
    .collect()
}

fn frames_in<P: smbm_net::WirePacket>(datagrams: &[Vec<u8>]) -> u64 {
    datagrams
        .iter()
        .map(|d| ((d.len() - smbm_net::codec::HEADER_LEN) / P::FRAME_LEN) as u64)
        .sum()
}

fn decode_all<P: smbm_net::WirePacket + std::fmt::Debug>(
    datagrams: &[Vec<u8>],
    check: impl Fn(&P) -> bool + Copy,
) -> u64 {
    let mut decoded = 0u64;
    for buf in datagrams {
        match decode::<P>(buf, check) {
            Ok(Datagram::Data { packets, .. }) => decoded += packets.len() as u64,
            other => panic!("pregenerated datagram failed to decode: {other:?}"),
        }
    }
    decoded
}

fn bench_netcodec(c: &mut Criterion) {
    let switch_cfg = WorkSwitchConfig::contiguous(PORTS as u32, PORTS).expect("valid config");
    let work = work_datagrams(&switch_cfg);
    let value = value_datagrams();
    let works: Vec<u32> = (0..PORTS)
        .map(|i| switch_cfg.work(PortId::new(i)).cycles())
        .collect();

    let mut group = c.benchmark_group("netcodec");

    let work_frames = frames_in::<WorkPacket>(&work);
    group.throughput(Throughput::Elements(work_frames));
    group.bench_function(BenchmarkId::new("decode", "work"), |b| {
        b.iter(|| decode_all::<WorkPacket>(black_box(&work), |_| true))
    });
    // The admission check `serve --listen` installs for the work model.
    group.bench_function(BenchmarkId::new("decode-checked", "work"), |b| {
        b.iter(|| {
            decode_all::<WorkPacket>(black_box(&work), |p| {
                works.get(p.port().index()).copied() == Some(p.work().cycles())
            })
        })
    });

    let value_frames = frames_in::<ValuePacket>(&value);
    group.throughput(Throughput::Elements(value_frames));
    group.bench_function(BenchmarkId::new("decode", "value"), |b| {
        b.iter(|| decode_all::<ValuePacket>(black_box(&value), |_| true))
    });

    // Encode throughput (the netgen side), one representative batch.
    let batch: Vec<ValuePacket> = (0..BATCH)
        .map(|i| ValuePacket::new(PortId::new(i % PORTS), Value::new(i as u64)))
        .collect();
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function(BenchmarkId::new("encode", "value"), |b| {
        b.iter(|| encode_data(0, black_box(&batch)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_netcodec
}
criterion_main!(benches);
