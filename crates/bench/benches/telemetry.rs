//! Criterion gate for the telemetry plane's hot-path overhead: the same
//! 4-shard datapath run with the stat-cell observer attached versus with no
//! observer at all. The CI telemetry-overhead job parses these two medians
//! and fails the build if telemetry-on regresses throughput by more than 5%.
//!
//! No sampler thread or sinks run here: the gate isolates the per-packet
//! cost the shard hot loop pays (local tallies plus one relaxed fold per
//! slot), which is the only part that scales with traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use smbm_core::{Lwd, WorkRunner};
use smbm_obs::TelemetryConfig;
use smbm_runtime::{RuntimeBuilder, RuntimeConfig, ShardConfig, VirtualClock, WorkService};
use smbm_switch::{WorkPacket, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix};

const SHARDS: usize = 4;

fn feeds(cfg: &WorkSwitchConfig) -> Vec<Vec<Vec<WorkPacket>>> {
    (0..SHARDS)
        .map(|s| {
            let scenario = MmppScenario {
                sources: 500,
                slots: 2_000,
                seed: 7 + s as u64,
                ..Default::default()
            };
            scenario
                .work_trace(cfg, &PortMix::Uniform)
                .expect("valid scenario")
                .batches(256)
                .collect()
        })
        .collect()
}

fn run_datapath(
    cfg: &WorkSwitchConfig,
    feeds: &[Vec<Vec<WorkPacket>>],
    telemetry: Option<TelemetryConfig>,
) -> (u64, u64) {
    let mut builder = RuntimeBuilder::new(RuntimeConfig {
        ring_capacity: 64,
        shard: ShardConfig::freerun(),
        telemetry,
        ..RuntimeConfig::default()
    });
    for feed in feeds.iter().cloned() {
        let cfg = cfg.clone();
        let id = builder
            .add_shard(move || WorkService::new(WorkRunner::new(cfg.clone(), Lwd::new(), 1)));
        builder.add_producer(id, move |handle| {
            for batch in feed {
                if !handle.send(batch) {
                    break;
                }
            }
        });
    }
    let report = builder.run(|_| VirtualClock::new());
    (report.score(), report.counters().arrived())
}

fn telemetry_overhead(c: &mut Criterion) {
    let cfg = WorkSwitchConfig::contiguous(64, 512).expect("valid");
    let feeds = feeds(&cfg);
    let total: u64 = feeds.iter().flatten().map(|b| b.len() as u64).sum();

    let mut group = c.benchmark_group("telemetry-overhead");
    group.throughput(Throughput::Elements(total));
    group.bench_with_input(BenchmarkId::new("null", SHARDS), &feeds, |b, feeds| {
        b.iter(|| black_box(run_datapath(&cfg, feeds, None)));
    });
    group.bench_with_input(BenchmarkId::new("telemetry", SHARDS), &feeds, |b, feeds| {
        b.iter(|| {
            black_box(run_datapath(
                &cfg,
                feeds,
                // A quiet sampler: the interval is far beyond the run's
                // length, so the measurement sees only the hot-path cost.
                Some(TelemetryConfig {
                    interval: Duration::from_secs(3600),
                    ..TelemetryConfig::default()
                }),
            ))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = telemetry_overhead
}
criterion_main!(benches);
