//! Criterion benchmarks of the shared slot machine (`smbm-datapath`).
//!
//! The `datapath` group drives `SlotMachine` directly — no engine or runtime
//! around it — so its numbers isolate the cost of the canonical
//! flush/arrival/transmission/drain implementation both drivers now share.
//! Compare against the `engine` group (which wraps the same machine in the
//! trace-fed driver): the deltas are the driver overhead, and the `engine`
//! numbers themselves are the regression gate against the pre-unification
//! baselines in `results/BENCH_datapath.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use smbm_core::{Lwd, Mrd, ValueRunner, WorkRunner};
use smbm_datapath::{NoHook, SlotHook, SlotMachine, SlotStats, ValueAdapter, WorkAdapter};
use smbm_obs::NullObserver;
use smbm_switch::{FlushPolicy, ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

/// Raw machine throughput: one `step` per trace slot, no flush, no driver.
fn slot_machine_step(c: &mut Criterion) {
    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let scenario = MmppScenario {
        sources: 12,
        slots: 5_000,
        seed: 3,
        ..Default::default()
    };
    let trace = scenario
        .work_trace(&cfg, &PortMix::Uniform)
        .expect("valid scenario");

    let mut group = c.benchmark_group("datapath");
    group.throughput(Throughput::Elements(trace.slots() as u64));
    group.bench_function("lwd-step-loop", |b| {
        b.iter(|| {
            let runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
            let mut machine = SlotMachine::new(WorkAdapter::new(runner), None);
            let mut obs = NullObserver;
            for burst in trace.iter() {
                machine
                    .step(burst, &mut obs, &mut NoHook)
                    .expect("LWD never errs");
            }
            black_box(machine.score())
        });
    });

    let vcfg = ValueSwitchConfig::new(64, 8).expect("valid");
    let scenario = MmppScenario {
        sources: 32,
        slots: 5_000,
        seed: 3,
        ..Default::default()
    };
    let vtrace = scenario
        .value_trace(8, &PortMix::Uniform, &ValueMix::Uniform { max: 16 })
        .expect("valid scenario");
    group.throughput(Throughput::Elements(vtrace.slots() as u64));
    group.bench_function("mrd-step-loop", |b| {
        b.iter(|| {
            let runner = ValueRunner::new(vcfg, Mrd::new(), 1);
            let mut machine = SlotMachine::new(ValueAdapter::new(runner), None);
            let mut obs = NullObserver;
            for burst in vtrace.iter() {
                machine
                    .step(burst, &mut obs, &mut NoHook)
                    .expect("MRD never errs");
            }
            black_box(machine.score())
        });
    });
    group.finish();
}

/// Per-slot write-through hook (what the live shard uses for crash-safe
/// accounting) vs the engine's `NoHook`: the delta is what supervised
/// progress recording costs at every slot boundary.
fn slot_hook_overhead(c: &mut Criterion) {
    struct RecordingHook {
        stats: SlotStats,
        score: u64,
    }
    impl<S: smbm_datapath::DatapathSystem> SlotHook<S> for RecordingHook {
        fn slot_done(&mut self, sys: &S, stats: &SlotStats) {
            self.stats = *stats;
            self.score = sys.score();
        }
    }

    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let scenario = MmppScenario {
        sources: 12,
        slots: 5_000,
        seed: 3,
        ..Default::default()
    };
    let trace = scenario
        .work_trace(&cfg, &PortMix::Uniform)
        .expect("valid scenario");

    let mut group = c.benchmark_group("datapath-hook");
    group.throughput(Throughput::Elements(trace.slots() as u64));
    group.bench_function("no-hook", |b| {
        b.iter(|| {
            let runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
            let mut machine = SlotMachine::new(WorkAdapter::new(runner), None);
            let mut obs = NullObserver;
            for burst in trace.iter() {
                machine
                    .step(burst, &mut obs, &mut NoHook)
                    .expect("LWD never errs");
            }
            black_box(machine.score())
        });
    });
    group.bench_function("recording-hook", |b| {
        b.iter(|| {
            let runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
            let mut machine = SlotMachine::new(WorkAdapter::new(runner), None);
            let mut obs = NullObserver;
            let mut hook = RecordingHook {
                stats: SlotStats::new(),
                score: 0,
            };
            for burst in trace.iter() {
                machine
                    .step(burst, &mut obs, &mut hook)
                    .expect("LWD never errs");
            }
            black_box((machine.score(), hook.score))
        });
    });
    group.finish();
}

/// Flush scheduling on the hot path: the `flush_check` branch per slot, in
/// both Drop (instant discard) and Drain (extra transmission-only slots)
/// modes, against the unflushed loop.
fn flush_modes(c: &mut Criterion) {
    let cfg = WorkSwitchConfig::contiguous(8, 64).expect("valid");
    let scenario = MmppScenario {
        sources: 12,
        slots: 5_000,
        seed: 3,
        ..Default::default()
    };
    let trace = scenario
        .work_trace(&cfg, &PortMix::Uniform)
        .expect("valid scenario");

    let mut group = c.benchmark_group("datapath-flush");
    group.throughput(Throughput::Elements(trace.slots() as u64));
    for (name, flush) in [
        ("none", None),
        ("drop-every-500", Some(FlushPolicy::every(500).dropping())),
        ("drain-every-500", Some(FlushPolicy::every(500))),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
                let mut machine = SlotMachine::new(WorkAdapter::new(runner), flush);
                let mut obs = NullObserver;
                for burst in trace.iter() {
                    assert!(machine.flush_check(&mut obs, &mut NoHook));
                    machine
                        .step(burst, &mut obs, &mut NoHook)
                        .expect("LWD never errs");
                }
                black_box(machine.score())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = slot_machine_step, slot_hook_overhead, flush_modes
}
criterion_main!(benches);
