//! Lifetime accounting for every packet a switch ever sees.
//!
//! The counters uphold conservation laws that double as test oracles, in
//! both packets and value:
//!
//! * `arrived == admitted + dropped` (and the same identity over values)
//! * `admitted == transmitted + pushed_out + resident`
//!
//! where `resident` is the current buffer occupancy. Any policy or engine bug
//! that loses or duplicates a packet breaks one of these identities. The
//! packet laws are checked by [`Counters::check_conservation`]; the admission
//! value law needs the resident *value* (which only the buffer knows) and is
//! checked separately by [`Counters::check_value_conservation`].

use std::fmt;

/// Packet-lifetime counters maintained by [`crate::WorkSwitch`] and
/// [`crate::ValueSwitch`].
///
/// ```
/// use smbm_switch::Counters;
/// let mut c = Counters::default();
/// c.record_arrival(1);
/// c.record_admission(1);
/// c.record_transmission(1, 1);
/// assert!(c.check_conservation(0).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    arrived: u64,
    arrived_value: u64,
    admitted: u64,
    admitted_value: u64,
    dropped: u64,
    dropped_value: u64,
    dropped_backpressure: u64,
    dropped_backpressure_value: u64,
    dropped_shard_failure: u64,
    dropped_shard_failure_value: u64,
    dropped_net_decode: u64,
    dropped_net_decode_value: u64,
    pushed_out: u64,
    pushed_out_value: u64,
    transmitted: u64,
    transmitted_value: u64,
    cycles_consumed: u64,
    latency_sum: u64,
    latency_max: u64,
}

impl Counters {
    /// Creates zeroed counters (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a packet offered to the switch, carrying `value` (use 1 in the
    /// processing model, where throughput is a packet count).
    pub fn record_arrival(&mut self, value: u64) {
        self.arrived += 1;
        self.arrived_value += value;
    }

    /// Records a packet worth `value` accepted into the buffer.
    pub fn record_admission(&mut self, value: u64) {
        self.admitted += 1;
        self.admitted_value += value;
    }

    /// Records a packet worth `value` rejected on arrival.
    pub fn record_drop(&mut self, value: u64) {
        self.dropped += 1;
        self.dropped_value += value;
    }

    /// Records a packet worth `value` rejected *upstream* of admission
    /// control by a full ingress ring (runtime backpressure). The packet
    /// counts toward [`Counters::dropped`] — so the conservation law
    /// `arrived == admitted + dropped` still holds when the caller also
    /// records the arrival — but is attributed to backpressure, never to a
    /// policy decision.
    pub fn record_backpressure(&mut self, value: u64) {
        self.dropped += 1;
        self.dropped_value += value;
        self.dropped_backpressure += 1;
        self.dropped_backpressure_value += value;
    }

    /// Bulk form of [`Counters::record_arrival`] followed by
    /// [`Counters::record_backpressure`]: `packets` packets of total worth
    /// `value` arrived and were all rejected by a full ingress ring. Used
    /// when merging producer-side backpressure tallies into a switch-side
    /// counter set, so the conservation laws hold over the whole datapath.
    pub fn record_backpressure_bulk(&mut self, packets: u64, value: u64) {
        self.arrived += packets;
        self.arrived_value += value;
        self.dropped += packets;
        self.dropped_value += value;
        self.dropped_backpressure += packets;
        self.dropped_backpressure_value += value;
    }

    /// Records `packets` packets of total worth `value` lost to a shard
    /// failure: they arrived at the datapath but their shard died before
    /// serving them (orphaned ring backlog dropped when the supervisor's
    /// restart budget ran out, or packets destroyed mid-slot inside a dying
    /// shard). Like backpressure this is a bulk arrival-plus-drop, so the
    /// conservation law `arrived == admitted + dropped` keeps holding over
    /// the whole datapath across restarts; the drops are attributed to
    /// [`crate::DropReason::ShardFailure`], never to a policy decision.
    pub fn record_shard_failure_bulk(&mut self, packets: u64, value: u64) {
        self.arrived += packets;
        self.arrived_value += value;
        self.dropped += packets;
        self.dropped_value += value;
        self.dropped_shard_failure += packets;
        self.dropped_shard_failure_value += value;
    }

    /// Records `packets` frames of total worth `value` that arrived over the
    /// network but never decoded into valid packets (truncated datagrams,
    /// out-of-range ports, mismatched work). Like backpressure this is a
    /// bulk arrival-plus-drop — the frames reached the datapath's edge, so
    /// they count toward `arrived` and toward `dropped` — attributed to
    /// [`crate::DropReason::NetDecode`], never to a policy decision. An
    /// undecodable frame's value is unknown; callers normally pass 0, which
    /// keeps the value laws exact (nothing of known value was lost).
    pub fn record_net_decode_bulk(&mut self, packets: u64, value: u64) {
        self.arrived += packets;
        self.arrived_value += value;
        self.dropped += packets;
        self.dropped_value += value;
        self.dropped_net_decode += packets;
        self.dropped_net_decode_value += value;
    }

    /// Adds every count from `other` into `self` (latency maxima take the
    /// max). Merging per-shard counters yields datapath-wide totals for
    /// which the conservation laws still hold, since each law is linear.
    pub fn merge(&mut self, other: &Counters) {
        self.arrived += other.arrived;
        self.arrived_value += other.arrived_value;
        self.admitted += other.admitted;
        self.admitted_value += other.admitted_value;
        self.dropped += other.dropped;
        self.dropped_value += other.dropped_value;
        self.dropped_backpressure += other.dropped_backpressure;
        self.dropped_backpressure_value += other.dropped_backpressure_value;
        self.dropped_shard_failure += other.dropped_shard_failure;
        self.dropped_shard_failure_value += other.dropped_shard_failure_value;
        self.dropped_net_decode += other.dropped_net_decode;
        self.dropped_net_decode_value += other.dropped_net_decode_value;
        self.pushed_out += other.pushed_out;
        self.pushed_out_value += other.pushed_out_value;
        self.transmitted += other.transmitted;
        self.transmitted_value += other.transmitted_value;
        self.cycles_consumed += other.cycles_consumed;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
    }

    /// Records an admitted packet worth `value` evicted to make room for
    /// another.
    pub fn record_push_out(&mut self, value: u64) {
        self.pushed_out += 1;
        self.pushed_out_value += value;
    }

    /// Records a completed transmission of a packet worth `value`, after it
    /// spent `latency` slots in the buffer.
    pub fn record_transmission(&mut self, value: u64, latency: u64) {
        self.transmitted += 1;
        self.transmitted_value += value;
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
    }

    /// Records processing cycles consumed during a transmission phase.
    pub fn record_cycles(&mut self, cycles: u64) {
        self.cycles_consumed += cycles;
    }

    /// Records `packets` packets of total worth `value` discarded by a buffer
    /// flush (counted as push-outs so conservation still holds).
    pub fn record_flush(&mut self, packets: u64, value: u64) {
        self.pushed_out += packets;
        self.pushed_out_value += value;
    }

    /// Total packets offered.
    pub fn arrived(&self) -> u64 {
        self.arrived
    }

    /// Total value offered.
    pub fn arrived_value(&self) -> u64 {
        self.arrived_value
    }

    /// Total packets accepted into the buffer.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total value accepted into the buffer.
    pub fn admitted_value(&self) -> u64 {
        self.admitted_value
    }

    /// Total packets rejected on arrival.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total value rejected on arrival.
    pub fn dropped_value(&self) -> u64 {
        self.dropped_value
    }

    /// Packets rejected by ingress backpressure (a subset of
    /// [`Counters::dropped`]).
    pub fn dropped_backpressure(&self) -> u64 {
        self.dropped_backpressure
    }

    /// Value rejected by ingress backpressure (a subset of
    /// [`Counters::dropped_value`]).
    pub fn dropped_backpressure_value(&self) -> u64 {
        self.dropped_backpressure_value
    }

    /// Packets lost to shard failures (a subset of [`Counters::dropped`]).
    pub fn dropped_shard_failure(&self) -> u64 {
        self.dropped_shard_failure
    }

    /// Value lost to shard failures (a subset of
    /// [`Counters::dropped_value`]).
    pub fn dropped_shard_failure_value(&self) -> u64 {
        self.dropped_shard_failure_value
    }

    /// Frames lost to network decoding (a subset of [`Counters::dropped`]).
    pub fn dropped_net_decode(&self) -> u64 {
        self.dropped_net_decode
    }

    /// Value lost to network decoding (a subset of
    /// [`Counters::dropped_value`]; usually 0 — an undecodable frame's
    /// value is unknown).
    pub fn dropped_net_decode_value(&self) -> u64 {
        self.dropped_net_decode_value
    }

    /// Packets rejected by admission control itself (policy or full-buffer
    /// drops, excluding upstream backpressure, shard-failure, and
    /// net-decode losses).
    pub fn dropped_at_switch(&self) -> u64 {
        self.dropped
            - self.dropped_backpressure
            - self.dropped_shard_failure
            - self.dropped_net_decode
    }

    /// Total admitted packets later evicted (including flushed packets).
    pub fn pushed_out(&self) -> u64 {
        self.pushed_out
    }

    /// Total value evicted after admission (including flushed value).
    pub fn pushed_out_value(&self) -> u64 {
        self.pushed_out_value
    }

    /// Total packets transmitted.
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Total value transmitted (equals `transmitted()` in the processing
    /// model).
    pub fn transmitted_value(&self) -> u64 {
        self.transmitted_value
    }

    /// Total processing cycles consumed.
    pub fn cycles_consumed(&self) -> u64 {
        self.cycles_consumed
    }

    /// Mean sojourn time of transmitted packets, in slots.
    pub fn mean_latency(&self) -> f64 {
        if self.transmitted == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.transmitted as f64
        }
    }

    /// Largest sojourn time observed.
    pub fn max_latency(&self) -> u64 {
        self.latency_max
    }

    /// Fraction of offered packets that were eventually transmitted.
    pub fn goodput(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.transmitted as f64 / self.arrived as f64
        }
    }

    /// Verifies the packet conservation laws against the current buffer
    /// `occupancy`, plus the arrival value law
    /// `arrived_value == admitted_value + dropped_value`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConservationError`] describing the violated identity.
    pub fn check_conservation(&self, occupancy: usize) -> Result<(), ConservationError> {
        if self.arrived != self.admitted + self.dropped {
            return Err(ConservationError::Arrivals {
                arrived: self.arrived,
                admitted: self.admitted,
                dropped: self.dropped,
            });
        }
        if self.arrived_value != self.admitted_value + self.dropped_value {
            return Err(ConservationError::ArrivalValue {
                arrived_value: self.arrived_value,
                admitted_value: self.admitted_value,
                dropped_value: self.dropped_value,
            });
        }
        let accounted = self.transmitted + self.pushed_out + occupancy as u64;
        if self.admitted != accounted {
            return Err(ConservationError::Admissions {
                admitted: self.admitted,
                transmitted: self.transmitted,
                pushed_out: self.pushed_out,
                resident: occupancy as u64,
            });
        }
        Ok(())
    }

    /// Verifies the admission value law
    /// `admitted_value == transmitted_value + pushed_out_value + resident_value`,
    /// where `resident_value` is the total value currently buffered (known
    /// only to the buffer itself, hence the separate entry point).
    ///
    /// # Errors
    ///
    /// Returns [`ConservationError::AdmissionValue`] when the identity fails.
    pub fn check_value_conservation(&self, resident_value: u64) -> Result<(), ConservationError> {
        let accounted = self.transmitted_value + self.pushed_out_value + resident_value;
        if self.admitted_value != accounted {
            return Err(ConservationError::AdmissionValue {
                admitted_value: self.admitted_value,
                transmitted_value: self.transmitted_value,
                pushed_out_value: self.pushed_out_value,
                resident_value,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "arrived={} admitted={} dropped={} backpressure={} shard_failure={} net_decode={} \
             pushed_out={} transmitted={} value={} admitted_value={} dropped_value={} \
             pushed_out_value={}",
            self.arrived,
            self.admitted,
            self.dropped,
            self.dropped_backpressure,
            self.dropped_shard_failure,
            self.dropped_net_decode,
            self.pushed_out,
            self.transmitted,
            self.transmitted_value,
            self.admitted_value,
            self.dropped_value,
            self.pushed_out_value
        )
    }
}

/// A violated conservation identity, reported by
/// [`Counters::check_conservation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConservationError {
    /// `arrived != admitted + dropped`.
    Arrivals {
        /// Packets offered.
        arrived: u64,
        /// Packets admitted.
        admitted: u64,
        /// Packets dropped.
        dropped: u64,
    },
    /// `admitted != transmitted + pushed_out + resident`.
    Admissions {
        /// Packets admitted.
        admitted: u64,
        /// Packets transmitted.
        transmitted: u64,
        /// Packets pushed out.
        pushed_out: u64,
        /// Packets still buffered.
        resident: u64,
    },
    /// `arrived_value != admitted_value + dropped_value`.
    ArrivalValue {
        /// Value offered.
        arrived_value: u64,
        /// Value admitted.
        admitted_value: u64,
        /// Value dropped.
        dropped_value: u64,
    },
    /// `admitted_value != transmitted_value + pushed_out_value + resident_value`.
    AdmissionValue {
        /// Value admitted.
        admitted_value: u64,
        /// Value transmitted.
        transmitted_value: u64,
        /// Value pushed out.
        pushed_out_value: u64,
        /// Value still buffered.
        resident_value: u64,
    },
}

impl fmt::Display for ConservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConservationError::Arrivals {
                arrived,
                admitted,
                dropped,
            } => write!(
                f,
                "arrival conservation violated: {arrived} arrived but {admitted} admitted + {dropped} dropped"
            ),
            ConservationError::Admissions {
                admitted,
                transmitted,
                pushed_out,
                resident,
            } => write!(
                f,
                "admission conservation violated: {admitted} admitted but {transmitted} transmitted + {pushed_out} pushed out + {resident} resident"
            ),
            ConservationError::ArrivalValue {
                arrived_value,
                admitted_value,
                dropped_value,
            } => write!(
                f,
                "arrival value conservation violated: value {arrived_value} arrived but {admitted_value} admitted + {dropped_value} dropped"
            ),
            ConservationError::AdmissionValue {
                admitted_value,
                transmitted_value,
                pushed_out_value,
                resident_value,
            } => write!(
                f,
                "admission value conservation violated: value {admitted_value} admitted but {transmitted_value} transmitted + {pushed_out_value} pushed out + {resident_value} resident"
            ),
        }
    }
}

impl std::error::Error for ConservationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_counters_conserve() {
        assert!(Counters::new().check_conservation(0).is_ok());
    }

    #[test]
    fn full_lifecycle_conserves() {
        let mut c = Counters::new();
        for _ in 0..10 {
            c.record_arrival(2);
        }
        for _ in 0..6 {
            c.record_admission(2);
        }
        for _ in 0..4 {
            c.record_drop(2);
        }
        c.record_push_out(2);
        c.record_transmission(2, 3);
        c.record_transmission(2, 5);
        // 6 admitted = 2 transmitted + 1 pushed out + 3 resident.
        assert!(c.check_conservation(3).is_ok());
        // Value 12 admitted = 4 transmitted + 2 pushed out + 6 resident.
        assert!(c.check_value_conservation(6).is_ok());
        assert_eq!(c.transmitted_value(), 4);
        assert_eq!(c.arrived_value(), 20);
        assert_eq!(c.admitted_value(), 12);
        assert_eq!(c.dropped_value(), 8);
        assert_eq!(c.pushed_out_value(), 2);
    }

    #[test]
    fn detects_arrival_violation() {
        let mut c = Counters::new();
        c.record_arrival(1);
        let err = c.check_conservation(0).unwrap_err();
        assert!(matches!(err, ConservationError::Arrivals { .. }));
        assert!(err.to_string().contains("arrival conservation"));
    }

    #[test]
    fn detects_admission_violation() {
        let mut c = Counters::new();
        c.record_arrival(1);
        c.record_admission(1);
        let err = c.check_conservation(0).unwrap_err();
        assert!(matches!(err, ConservationError::Admissions { .. }));
        assert!(err.to_string().contains("admission conservation"));
    }

    #[test]
    fn detects_arrival_value_violation() {
        let mut c = Counters::new();
        c.record_arrival(5);
        c.record_admission(3); // value leaked: 5 arrived, 3 admitted, 0 dropped
        let err = c.check_conservation(1).unwrap_err();
        assert!(matches!(err, ConservationError::ArrivalValue { .. }));
        assert!(err.to_string().contains("arrival value conservation"));
    }

    #[test]
    fn detects_admission_value_violation() {
        let mut c = Counters::new();
        c.record_arrival(5);
        c.record_admission(5);
        c.record_transmission(3, 0);
        let err = c.check_value_conservation(0).unwrap_err();
        assert!(matches!(err, ConservationError::AdmissionValue { .. }));
        assert!(err.to_string().contains("admission value conservation"));
        assert!(c.check_value_conservation(2).is_ok());
    }

    #[test]
    fn backpressure_counts_as_a_separate_drop_class() {
        let mut c = Counters::new();
        for _ in 0..4 {
            c.record_arrival(2);
        }
        c.record_admission(2);
        c.record_drop(2); // policy/full drop at the switch
        c.record_backpressure(2);
        c.record_backpressure(2);
        assert!(c.check_conservation(1).is_ok());
        assert_eq!(c.dropped(), 3);
        assert_eq!(c.dropped_backpressure(), 2);
        assert_eq!(c.dropped_backpressure_value(), 4);
        assert_eq!(c.dropped_at_switch(), 1);
        assert!(c.to_string().contains("backpressure=2"));
    }

    #[test]
    fn merge_and_bulk_backpressure_preserve_conservation() {
        let mut a = Counters::new();
        a.record_arrival(3);
        a.record_admission(3);
        a.record_transmission(3, 5);
        let mut b = Counters::new();
        b.record_arrival(1);
        b.record_drop(1);
        b.record_arrival(2);
        b.record_admission(2);
        b.record_transmission(2, 9);
        a.merge(&b);
        assert_eq!(a.arrived(), 3);
        assert_eq!(a.transmitted(), 2);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.max_latency(), 9);
        assert!(a.check_conservation(0).is_ok());

        a.record_backpressure_bulk(10, 25);
        assert_eq!(a.arrived(), 13);
        assert_eq!(a.dropped_backpressure(), 10);
        assert_eq!(a.dropped_backpressure_value(), 25);
        assert_eq!(a.dropped_at_switch(), 1);
        assert!(a.check_conservation(0).is_ok());
    }

    #[test]
    fn shard_failure_is_a_separate_drop_class() {
        let mut c = Counters::new();
        c.record_arrival(2);
        c.record_admission(2);
        c.record_transmission(2, 1);
        c.record_backpressure_bulk(3, 6);
        c.record_shard_failure_bulk(5, 10);
        assert!(c.check_conservation(0).is_ok());
        assert_eq!(c.dropped(), 8);
        assert_eq!(c.dropped_backpressure(), 3);
        assert_eq!(c.dropped_shard_failure(), 5);
        assert_eq!(c.dropped_shard_failure_value(), 10);
        assert_eq!(c.dropped_at_switch(), 0);
        assert!(c.to_string().contains("shard_failure=5"));

        let mut merged = Counters::new();
        merged.merge(&c);
        assert_eq!(merged.dropped_shard_failure(), 5);
        assert_eq!(merged.dropped_shard_failure_value(), 10);
        assert!(merged.check_conservation(0).is_ok());
    }

    #[test]
    fn net_decode_is_a_separate_drop_class() {
        let mut c = Counters::new();
        c.record_arrival(2);
        c.record_admission(2);
        c.record_transmission(2, 1);
        c.record_backpressure_bulk(3, 6);
        c.record_net_decode_bulk(4, 0);
        assert!(c.check_conservation(0).is_ok());
        assert!(c.check_value_conservation(0).is_ok());
        assert_eq!(c.dropped(), 7);
        assert_eq!(c.dropped_net_decode(), 4);
        assert_eq!(c.dropped_net_decode_value(), 0);
        assert_eq!(c.dropped_at_switch(), 0);
        assert!(c.to_string().contains("net_decode=4"));

        let mut merged = Counters::new();
        merged.merge(&c);
        assert_eq!(merged.dropped_net_decode(), 4);
        assert!(merged.check_conservation(0).is_ok());
    }

    #[test]
    fn latency_statistics() {
        let mut c = Counters::new();
        c.record_transmission(1, 2);
        c.record_transmission(1, 6);
        assert_eq!(c.mean_latency(), 4.0);
        assert_eq!(c.max_latency(), 6);
    }

    #[test]
    fn latency_of_empty_counters_is_zero() {
        let c = Counters::new();
        assert_eq!(c.mean_latency(), 0.0);
        assert_eq!(c.goodput(), 0.0);
    }

    #[test]
    fn goodput_fraction() {
        let mut c = Counters::new();
        for _ in 0..4 {
            c.record_arrival(1);
            c.record_admission(1);
        }
        c.record_transmission(1, 0);
        assert_eq!(c.goodput(), 0.25);
    }

    #[test]
    fn flush_counts_as_push_out() {
        let mut c = Counters::new();
        for _ in 0..3 {
            c.record_arrival(1);
            c.record_admission(1);
        }
        c.record_flush(3, 3);
        assert!(c.check_conservation(0).is_ok());
        assert!(c.check_value_conservation(0).is_ok());
        assert_eq!(c.pushed_out(), 3);
        assert_eq!(c.pushed_out_value(), 3);
    }

    #[test]
    fn display_is_informative() {
        let c = Counters::new();
        let s = c.to_string();
        assert!(s.contains("arrived=0"));
        assert!(s.contains("transmitted=0"));
    }
}
