//! Strongly-typed identifiers and quantities used throughout the switch model.
//!
//! The paper indexes ports from 1; internally we index from 0 and only convert
//! in `Display` output. Newtypes keep ports, work amounts, values, and slot
//! indices from being mixed up ([C-NEWTYPE]).

use std::fmt;

/// Index of an output port (and of its queue) in a shared-memory switch.
///
/// Internally zero-based; the human-readable `Display` form is one-based to
/// match the paper's notation.
///
/// ```
/// use smbm_switch::PortId;
/// let p = PortId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.to_string(), "port#1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortId(usize);

impl PortId {
    /// Creates a port id from a zero-based index.
    pub const fn new(index: usize) -> Self {
        PortId(index)
    }

    /// Returns the zero-based index of this port.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over the first `n` port ids, `0..n`.
    ///
    /// ```
    /// use smbm_switch::PortId;
    /// let all: Vec<_> = PortId::all(3).collect();
    /// assert_eq!(all, vec![PortId::new(0), PortId::new(1), PortId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = PortId> {
        (0..n).map(PortId)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port#{}", self.0 + 1)
    }
}

impl From<usize> for PortId {
    fn from(index: usize) -> Self {
        PortId(index)
    }
}

/// An amount of required processing, in cycles.
///
/// The paper bounds per-packet work by a global maximum `k`; a work amount is
/// always at least 1 when attached to a packet (validated at configuration
/// time, see [`crate::WorkSwitchConfig`]).
///
/// ```
/// use smbm_switch::Work;
/// let w = Work::new(3);
/// assert_eq!(w.cycles(), 3);
/// assert_eq!(w.to_string(), "3cy");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Work(u32);

impl Work {
    /// One processing cycle: the homogeneous-work case of the classic
    /// shared-memory switch model.
    pub const ONE: Work = Work(1);

    /// Creates a work amount from a cycle count.
    pub const fn new(cycles: u32) -> Self {
        Work(cycles)
    }

    /// Returns the number of cycles.
    pub const fn cycles(self) -> u32 {
        self.0
    }

    /// Returns the cycle count widened to `u64`, convenient for totals.
    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

impl fmt::Display for Work {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u32> for Work {
    fn from(cycles: u32) -> Self {
        Work(cycles)
    }
}

/// The intrinsic value of a packet in the heterogeneous-value model.
///
/// ```
/// use smbm_switch::Value;
/// assert!(Value::new(6) > Value::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(u64);

impl Value {
    /// Unit value: the homogeneous-value case.
    pub const ONE: Value = Value(1);

    /// Creates a value.
    pub const fn new(v: u64) -> Self {
        Value(v)
    }

    /// Returns the raw value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

/// A discrete time-slot index.
///
/// Each slot consists of an arrival phase followed by a transmission phase
/// (Section III-A / IV-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(u64);

impl Slot {
    /// The first time slot.
    pub const ZERO: Slot = Slot(0);

    /// Creates a slot index.
    pub const fn new(t: u64) -> Self {
        Slot(t)
    }

    /// Returns the raw slot index.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The slot immediately after this one.
    #[must_use]
    pub const fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// Number of slots elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: Slot) -> u64 {
        debug_assert!(earlier.0 <= self.0, "slot arithmetic went backwards");
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl From<u64> for Slot {
    fn from(t: u64) -> Self {
        Slot(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_id_roundtrip() {
        let p = PortId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(PortId::from(7), p);
    }

    #[test]
    fn port_id_display_is_one_based() {
        assert_eq!(PortId::new(0).to_string(), "port#1");
        assert_eq!(PortId::new(9).to_string(), "port#10");
    }

    #[test]
    fn port_id_all_enumerates() {
        assert_eq!(PortId::all(0).count(), 0);
        let v: Vec<_> = PortId::all(2).collect();
        assert_eq!(v, vec![PortId::new(0), PortId::new(1)]);
    }

    #[test]
    fn work_accessors() {
        let w = Work::new(5);
        assert_eq!(w.cycles(), 5);
        assert_eq!(w.as_u64(), 5);
        assert_eq!(Work::ONE.cycles(), 1);
    }

    #[test]
    fn work_ordering() {
        assert!(Work::new(2) < Work::new(3));
        assert_eq!(Work::from(4), Work::new(4));
    }

    #[test]
    fn value_ordering_and_display() {
        assert!(Value::new(6) > Value::ONE);
        assert_eq!(Value::new(6).to_string(), "$6");
        assert_eq!(Value::from(3).get(), 3);
    }

    #[test]
    fn slot_arithmetic() {
        let t0 = Slot::ZERO;
        let t1 = t0.next();
        assert_eq!(t1.get(), 1);
        assert_eq!(t1.since(t0), 1);
        assert_eq!(Slot::new(10).since(Slot::new(4)), 6);
    }

    #[test]
    fn displays_are_nonempty() {
        // C-DEBUG-NONEMPTY in spirit: human-readable forms always render.
        assert!(!PortId::default().to_string().is_empty());
        assert!(!Work::default().to_string().is_empty());
        assert!(!Value::default().to_string().is_empty());
        assert!(!Slot::default().to_string().is_empty());
    }
}
