//! Periodic buffer flushouts (Section V-A: "periodic flushouts").
//!
//! Shared by the offline simulation engine (`smbm-sim`) and the live
//! runtime (`smbm-runtime`), so a flush schedule configured for one applies
//! identically to the other.

/// What a flushout does to the buffered packets.
///
/// The paper does not specify; both readings are implemented and compared by
/// the `ablations` bench (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushMode {
    /// Pause arrivals and keep transmitting until the buffer empties: every
    /// admitted packet still counts. The default (fairer to both sides).
    #[default]
    Drain,
    /// Instantly discard the buffer contents.
    Drop,
}

/// When and how to flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush before the arrival phase of every slot divisible by `period`
    /// (slot 0 excluded).
    pub period: u64,
    /// What the flush does.
    pub mode: FlushMode,
}

impl FlushPolicy {
    /// Creates a draining flush policy with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn every(period: u64) -> Self {
        assert!(period > 0, "flush period must be positive");
        FlushPolicy {
            period,
            mode: FlushMode::Drain,
        }
    }

    /// Same period, dropping instead of draining.
    #[must_use]
    pub fn dropping(mut self) -> Self {
        self.mode = FlushMode::Drop;
        self
    }

    /// Whether a flush is due at the start of `slot`.
    pub fn due(&self, slot: u64) -> bool {
        slot > 0 && slot.is_multiple_of(self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_skips_slot_zero() {
        let f = FlushPolicy::every(4);
        assert!(!f.due(0));
        assert!(!f.due(3));
        assert!(f.due(4));
        assert!(f.due(8));
    }

    #[test]
    fn builders() {
        let f = FlushPolicy::every(10);
        assert_eq!(f.mode, FlushMode::Drain);
        let f = f.dropping();
        assert_eq!(f.mode, FlushMode::Drop);
        assert_eq!(f.period, 10);
    }

    #[test]
    #[should_panic(expected = "flush period must be positive")]
    fn zero_period_panics() {
        let _ = FlushPolicy::every(0);
    }
}
