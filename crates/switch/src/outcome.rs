//! Per-packet arrival outcome taxonomy.
//!
//! Admission control resolves every offered packet into exactly one of
//! three fates: admitted into the buffer, admitted at the cost of evicting
//! a resident packet, or dropped. [`ArrivalOutcome`] captures that fate so
//! engine-level observers can attribute drops to a [`DropReason`] without
//! re-deriving policy internals.

use crate::PortId;

/// Why an offered packet was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The shared buffer was full and the policy declined to push anything
    /// out to make room.
    BufferFull,
    /// The policy rejected the packet even though buffer space remained
    /// (e.g. a harmonic/exponential static threshold said no).
    Policy,
    /// The packet never reached admission control: a full ingress ring
    /// rejected it upstream of the switch (runtime backpressure). Counted
    /// separately so ring-full rejections are never misattributed to the
    /// buffer-management policy.
    Backpressure,
    /// The packet was lost to a shard failure: its shard died and the
    /// supervisor exhausted the restart budget (or the packet vanished
    /// mid-slot inside the dying shard), so it was never served. Counted
    /// separately from both policy drops and backpressure so packet
    /// conservation holds across shard restarts.
    ShardFailure,
    /// The packet arrived over the network but never decoded into a valid
    /// frame: the datagram was truncated mid-frame or the frame failed
    /// validation (unknown port, mismatched work). Counted separately so
    /// wire-level garbage is never misattributed to the policy or to
    /// backpressure.
    NetDecode,
}

impl DropReason {
    /// A stable lowercase label, used in event logs and metric reports.
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::BufferFull => "buffer_full",
            DropReason::Policy => "policy",
            DropReason::Backpressure => "backpressure",
            DropReason::ShardFailure => "shard_failure",
            DropReason::NetDecode => "net_decode",
        }
    }
}

/// The resolved fate of one offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// The packet was admitted into free buffer space.
    Admitted,
    /// The packet was admitted after evicting a resident packet queued for
    /// the given port.
    PushedOut(PortId),
    /// The packet was rejected for the given reason.
    Dropped(DropReason),
}

impl ArrivalOutcome {
    /// True when the packet ended up in the buffer (with or without an
    /// eviction).
    pub fn admitted(&self) -> bool {
        !matches!(self, ArrivalOutcome::Dropped(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_reason_labels_are_stable() {
        assert_eq!(DropReason::BufferFull.label(), "buffer_full");
        assert_eq!(DropReason::Policy.label(), "policy");
        assert_eq!(DropReason::Backpressure.label(), "backpressure");
        assert_eq!(DropReason::ShardFailure.label(), "shard_failure");
        assert_eq!(DropReason::NetDecode.label(), "net_decode");
    }

    #[test]
    fn admitted_predicate() {
        assert!(ArrivalOutcome::Admitted.admitted());
        assert!(ArrivalOutcome::PushedOut(PortId::new(0)).admitted());
        assert!(!ArrivalOutcome::Dropped(DropReason::Policy).admitted());
    }
}
