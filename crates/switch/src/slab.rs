//! The shared slab of packet slots backing every queue of a switch.
//!
//! The paper's model gives each switch one buffer of exactly `B` unit-sized
//! packet slots shared by all `n` output queues. [`BufferCore`] is that
//! buffer, literally: a preallocated arena of `B` nodes, each holding one
//! resident packet's `(value, arrival slot)` pair plus intrusive `prev`/`next`
//! links. Per-port queues ([`crate::WorkQueue`], [`crate::ValueQueue`],
//! [`crate::CombinedQueue`]) are [`SlotList`] views over this arena: they own
//! no storage, only a head/tail/len triple, so admitting a packet never
//! allocates and the buffer-full condition is exactly "the free list is
//! empty".
//!
//! Free nodes are chained through `next` with `prev` set to the [`FREE`]
//! sentinel, which lets [`BufferCore::release`] detect double-frees and
//! [`BufferCore::check_accounting`] verify `allocated + free == B` with no
//! slot leaked.

use crate::{Slot, Value};

/// Sentinel index meaning "no node".
pub(crate) const NIL: u32 = u32::MAX;

/// Sentinel stored in `prev` while a node sits on the free list.
const FREE: u32 = u32::MAX - 1;

#[derive(Debug, Clone)]
struct SlotNode {
    prev: u32,
    next: u32,
    value: Value,
    arrived: Slot,
}

/// A preallocated arena of exactly `B` packet slots with an intrusive free
/// list; the single allocation backing all queues of one switch.
#[derive(Debug, Clone)]
pub struct BufferCore {
    nodes: Vec<SlotNode>,
    free_head: u32,
    free_len: usize,
}

/// An intrusive doubly-linked list of slots inside a [`BufferCore`]; the
/// storage view a per-port queue owns. All mutation goes through
/// [`BufferCore`] methods so the pointer surgery lives in one place.
#[derive(Debug, Clone)]
pub struct SlotList {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for SlotList {
    fn default() -> Self {
        Self::new()
    }
}

impl SlotList {
    /// An empty list.
    pub const fn new() -> Self {
        SlotList {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of slots on this list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no slots are linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl BufferCore {
    /// Creates an arena of `capacity` slots, all free.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity < NIL as usize - 1,
            "buffer capacity {capacity} exceeds slab index range"
        );
        let mut nodes = Vec::with_capacity(capacity);
        for i in 0..capacity {
            let next = if i + 1 < capacity {
                (i + 1) as u32
            } else {
                NIL
            };
            nodes.push(SlotNode {
                prev: FREE,
                next,
                value: Value::ONE,
                arrived: Slot::ZERO,
            });
        }
        BufferCore {
            nodes,
            free_head: if capacity > 0 { 0 } else { NIL },
            free_len: capacity,
        }
    }

    /// Total number of slots `B`.
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Slots currently holding a resident packet.
    pub fn allocated(&self) -> usize {
        self.nodes.len() - self.free_len
    }

    /// Slots currently free.
    pub fn free_slots(&self) -> usize {
        self.free_len
    }

    /// Pops a node off the free list and fills it.
    ///
    /// # Panics
    ///
    /// Panics when the arena is exhausted; callers gate on
    /// [`BufferCore::free_slots`] (the switch's buffer-full check).
    fn alloc(&mut self, value: Value, arrived: Slot) -> u32 {
        let idx = self.free_head;
        assert!(idx != NIL, "buffer core exhausted: all slots allocated");
        let node = &mut self.nodes[idx as usize];
        debug_assert!(node.prev == FREE, "free-list node not marked free");
        self.free_head = node.next;
        self.free_len -= 1;
        node.prev = NIL;
        node.next = NIL;
        node.value = value;
        node.arrived = arrived;
        idx
    }

    /// Returns a node to the free list.
    ///
    /// # Panics
    ///
    /// Panics on a double free (the node is already on the free list).
    fn release(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        assert!(node.prev != FREE, "double free of slab slot {idx}");
        node.prev = FREE;
        node.next = self.free_head;
        self.free_head = idx;
        self.free_len += 1;
    }

    fn node(&self, idx: u32) -> &SlotNode {
        &self.nodes[idx as usize]
    }

    /// Links an allocated node at the back of `list`.
    fn link_back(&mut self, list: &mut SlotList, idx: u32) {
        let old_tail = list.tail;
        {
            let node = &mut self.nodes[idx as usize];
            node.prev = old_tail;
            node.next = NIL;
        }
        if old_tail == NIL {
            list.head = idx;
        } else {
            self.nodes[old_tail as usize].next = idx;
        }
        list.tail = idx;
        list.len += 1;
    }

    /// Links an allocated node at the front of `list`.
    fn link_front(&mut self, list: &mut SlotList, idx: u32) {
        let old_head = list.head;
        {
            let node = &mut self.nodes[idx as usize];
            node.prev = NIL;
            node.next = old_head;
        }
        if old_head == NIL {
            list.tail = idx;
        } else {
            self.nodes[old_head as usize].prev = idx;
        }
        list.head = idx;
        list.len += 1;
    }

    /// Links an allocated node immediately after `after` in `list`.
    fn link_after(&mut self, list: &mut SlotList, after: u32, idx: u32) {
        let next = self.nodes[after as usize].next;
        {
            let node = &mut self.nodes[idx as usize];
            node.prev = after;
            node.next = next;
        }
        self.nodes[after as usize].next = idx;
        if next == NIL {
            list.tail = idx;
        } else {
            self.nodes[next as usize].prev = idx;
        }
        list.len += 1;
    }

    /// Unlinks `idx` from `list` without freeing it.
    fn unlink(&mut self, list: &mut SlotList, idx: u32) {
        let SlotNode { prev, next, .. } = *self.node(idx);
        if prev == NIL {
            list.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            list.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        list.len -= 1;
    }

    /// Allocates a slot for `(value, arrived)` and appends it to `list`.
    pub(crate) fn push_back(&mut self, list: &mut SlotList, value: Value, arrived: Slot) {
        let idx = self.alloc(value, arrived);
        self.link_back(list, idx);
    }

    /// Allocates a slot and inserts it keeping `list` sorted by value,
    /// descending; among equal values the newcomer goes last (so the earlier
    /// arrival sits closer to the front and transmits first).
    pub(crate) fn insert_desc(&mut self, list: &mut SlotList, value: Value, arrived: Slot) {
        // Walk from the tail: the first node with `node.value >= value` is
        // the last entry the newcomer must follow. Two O(1) shortcuts cover
        // the common monotone patterns (new minimum / new maximum).
        let mut cur = list.tail;
        while cur != NIL && self.node(cur).value < value {
            cur = self.node(cur).prev;
        }
        let idx = self.alloc(value, arrived);
        if cur == NIL {
            self.link_front(list, idx);
        } else {
            self.link_after(list, cur, idx);
        }
    }

    /// Removes and frees the front slot (largest value in a descending
    /// list, head-of-line in a FIFO).
    pub(crate) fn pop_front(&mut self, list: &mut SlotList) -> Option<(Value, Slot)> {
        let idx = list.head;
        if idx == NIL {
            return None;
        }
        let SlotNode { value, arrived, .. } = *self.node(idx);
        self.unlink(list, idx);
        self.release(idx);
        Some((value, arrived))
    }

    /// Removes and frees the back slot (smallest value in a descending
    /// list, tail of a FIFO).
    pub(crate) fn pop_back(&mut self, list: &mut SlotList) -> Option<(Value, Slot)> {
        let idx = list.tail;
        if idx == NIL {
            return None;
        }
        let SlotNode { value, arrived, .. } = *self.node(idx);
        self.unlink(list, idx);
        self.release(idx);
        Some((value, arrived))
    }

    /// The front slot's `(value, arrived)` without removing it.
    pub(crate) fn front(&self, list: &SlotList) -> Option<(Value, Slot)> {
        (list.head != NIL).then(|| {
            let n = self.node(list.head);
            (n.value, n.arrived)
        })
    }

    /// The back slot's `(value, arrived)` without removing it.
    pub(crate) fn back(&self, list: &SlotList) -> Option<(Value, Slot)> {
        (list.tail != NIL).then(|| {
            let n = self.node(list.tail);
            (n.value, n.arrived)
        })
    }

    /// Frees every slot on `list`, returning how many were freed.
    pub(crate) fn clear(&mut self, list: &mut SlotList) -> u64 {
        let mut n = 0;
        while self.pop_front(list).is_some() {
            n += 1;
        }
        n
    }

    /// Iterates `(value, arrived)` pairs front to back.
    pub(crate) fn iter<'a>(&'a self, list: &SlotList) -> impl Iterator<Item = (Value, Slot)> + 'a {
        let mut cur = list.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let n = self.node(cur);
            cur = n.next;
            Some((n.value, n.arrived))
        })
    }

    /// True when `list` is sorted by value, non-increasing front to back.
    pub(crate) fn is_sorted_desc(&self, list: &SlotList) -> bool {
        let mut cur = list.head;
        let mut prev_value: Option<Value> = None;
        while cur != NIL {
            let n = self.node(cur);
            if prev_value.is_some_and(|p| p < n.value) {
                return false;
            }
            prev_value = Some(n.value);
            cur = n.next;
        }
        true
    }

    /// Verifies free-list accounting: the free chain is cycle-free, every
    /// chained node is marked free, exactly `free_len` nodes carry the free
    /// mark (no leak, no double-free), and `allocated + free == B`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated property.
    pub fn check_accounting(&self) -> Result<(), String> {
        let mut walked = 0usize;
        let mut cur = self.free_head;
        while cur != NIL {
            if walked > self.nodes.len() {
                return Err("free list contains a cycle".into());
            }
            let node = self.node(cur);
            if node.prev != FREE {
                return Err(format!(
                    "slot {cur} chained on free list but not marked free"
                ));
            }
            walked += 1;
            cur = node.next;
        }
        if walked != self.free_len {
            return Err(format!(
                "free list length {walked} != recorded free count {}",
                self.free_len
            ));
        }
        let marked = self.nodes.iter().filter(|n| n.prev == FREE).count();
        if marked != self.free_len {
            return Err(format!(
                "{marked} slots marked free but {} on the free list (leak or double free)",
                self.free_len
            ));
        }
        if self.allocated() + self.free_slots() != self.capacity() {
            return Err(format!(
                "allocated {} + free {} != capacity {}",
                self.allocated(),
                self.free_slots(),
                self.capacity()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> Value {
        Value::new(x)
    }

    #[test]
    fn new_core_is_all_free() {
        let core = BufferCore::new(4);
        assert_eq!(core.capacity(), 4);
        assert_eq!(core.allocated(), 0);
        assert_eq!(core.free_slots(), 4);
        core.check_accounting().unwrap();
    }

    #[test]
    fn push_and_pop_roundtrip() {
        let mut core = BufferCore::new(3);
        let mut list = SlotList::new();
        core.push_back(&mut list, v(1), Slot::new(10));
        core.push_back(&mut list, v(2), Slot::new(11));
        assert_eq!(list.len(), 2);
        assert_eq!(core.allocated(), 2);
        assert_eq!(core.pop_front(&mut list), Some((v(1), Slot::new(10))));
        assert_eq!(core.pop_back(&mut list), Some((v(2), Slot::new(11))));
        assert!(list.is_empty());
        assert_eq!(core.allocated(), 0);
        core.check_accounting().unwrap();
    }

    #[test]
    fn insert_desc_orders_and_keeps_arrival_order_among_equals() {
        let mut core = BufferCore::new(8);
        let mut list = SlotList::new();
        for (x, s) in [(3, 0), (1, 1), (6, 2), (2, 3), (6, 4)] {
            core.insert_desc(&mut list, v(x), Slot::new(s));
        }
        let got: Vec<(u64, u64)> = core
            .iter(&list)
            .map(|(val, s)| (val.get(), s.get()))
            .collect();
        assert_eq!(got, vec![(6, 2), (6, 4), (3, 0), (2, 3), (1, 1)]);
        assert!(core.is_sorted_desc(&list));
        core.check_accounting().unwrap();
    }

    #[test]
    fn exhausting_the_arena_panics() {
        let mut core = BufferCore::new(1);
        let mut list = SlotList::new();
        core.push_back(&mut list, v(1), Slot::ZERO);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            core.push_back(&mut list, v(2), Slot::ZERO);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn clear_returns_everything_to_free_list() {
        let mut core = BufferCore::new(5);
        let mut list = SlotList::new();
        for i in 0..5 {
            core.push_back(&mut list, v(i), Slot::ZERO);
        }
        assert_eq!(core.free_slots(), 0);
        assert_eq!(core.clear(&mut list), 5);
        assert_eq!(core.free_slots(), 5);
        assert!(list.is_empty());
        core.check_accounting().unwrap();
    }

    #[test]
    fn two_lists_share_one_arena() {
        let mut core = BufferCore::new(2);
        let mut a = SlotList::new();
        let mut b = SlotList::new();
        core.push_back(&mut a, v(1), Slot::ZERO);
        core.push_back(&mut b, v(2), Slot::ZERO);
        assert_eq!(core.free_slots(), 0);
        // Freeing from one list makes room for the other.
        core.pop_back(&mut a);
        core.push_back(&mut b, v(3), Slot::ZERO);
        assert_eq!(b.len(), 2);
        core.check_accounting().unwrap();
    }
}
