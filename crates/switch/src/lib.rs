//! # smbm-switch
//!
//! Shared-memory switch substrate for the reproduction of *"Shared Memory
//! Buffer Management for Heterogeneous Packet Processing"* (Eugster, Kogan,
//! Nikolenko, Sirotkin — ICDCS 2014).
//!
//! The paper studies an `l × n` switch whose `n` output queues share a single
//! buffer of `B` unit-sized packet slots, in two flavours:
//!
//! * the **heterogeneous-processing model** ([`WorkSwitch`]): each packet
//!   carries a required amount of processing; all packets destined to the
//!   same port require the same work; queues are FIFO; throughput is the
//!   number of transmitted packets;
//! * the **heterogeneous-value model** ([`ValueSwitch`]): unit-work packets
//!   carry intrinsic values; queues are priority queues (most valuable
//!   first); throughput is the total transmitted value.
//!
//! This crate owns the *mechanics* — queues, shared-buffer occupancy, the
//! two-phase slot structure, packet accounting and its conservation laws.
//! Admission *decisions* (LWD, LQD, MRD, ...) live in the `smbm-core` crate;
//! traffic lives in `smbm-traffic`; the slot loop lives in `smbm-sim`.
//!
//! Storage-wise, every switch owns a [`BufferCore`]: one preallocated slab of
//! exactly `B` packet slots that all queues share. Queues are intrusive
//! doubly-linked lists threaded through the slab, so admission, push-out and
//! transmission are O(1) pointer splices with no per-packet allocation, and
//! buffer occupancy *is* the slab's allocation count. The pre-slab queue
//! implementations survive verbatim in [`mod@reference`] as differential-test
//! oracles.
//!
//! ## Example
//!
//! ```
//! use smbm_switch::{PortId, ValuePacket, ValueSwitch, ValueSwitchConfig, Value};
//!
//! let mut sw = ValueSwitch::new(ValueSwitchConfig::new(8, 4)?);
//! sw.admit(ValuePacket::new(PortId::new(2), Value::new(6)))?;
//! assert_eq!(sw.occupancy(), 1);
//! let report = sw.transmit(1);
//! assert_eq!(report.value, 6);
//! sw.check_invariants().expect("conservation holds");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combined {
    pub mod queue;
    pub mod switch;
}
mod config;
mod counters;
mod dirty;
mod error;
mod flush;
mod ids;
mod outcome;
mod packet;
pub mod reference;
mod slab;
mod work {
    pub mod queue;
    pub mod switch;
}
mod value {
    pub mod queue;
    pub mod switch;
}

pub use combined::queue::{CombinedQueue, InService};
pub use combined::switch::{CombinedPacket, CombinedPhaseReport, CombinedSwitch};
pub use config::{ValueSwitchConfig, WorkSwitchConfig};
pub use counters::{ConservationError, Counters};
pub use dirty::DirtyPorts;
pub use error::{AdmitError, ConfigError};
pub use flush::{FlushMode, FlushPolicy};
pub use ids::{PortId, Slot, Value, Work};
pub use outcome::{ArrivalOutcome, DropReason};
pub use packet::{Transmitted, ValuePacket, WorkPacket};
pub use slab::{BufferCore, SlotList};
pub use value::queue::{RatioKey, ValueEntry, ValueQueue};
pub use value::switch::{ValuePhaseReport, ValueSwitch};
pub use work::queue::WorkQueue;
pub use work::switch::{PhaseReport, WorkSwitch};
