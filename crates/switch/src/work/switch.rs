//! The shared-memory switch state machine for the heterogeneous-processing
//! model (Section III of the paper).

use crate::slab::BufferCore;
use crate::{
    AdmitError, ConservationError, Counters, DirtyPorts, PortId, Slot, Transmitted, Value,
    WorkPacket, WorkQueue, WorkSwitchConfig,
};

/// Outcome summary of one transmission phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseReport {
    /// Packets transmitted during the phase.
    pub transmitted: u64,
    /// Total value carried out (equals `transmitted` in this model).
    pub value: u64,
    /// Processing cycles actually consumed across all ports.
    pub cycles_used: u64,
}

/// An `l × n` shared-memory switch with buffer capacity `B` whose packets
/// carry heterogeneous processing requirements.
///
/// The buffer is a [`BufferCore`] slab of exactly `B` slots; every queue is a
/// linked-list view over it, so occupancy is the slab's allocated count and
/// "buffer full" is exactly "free list empty". The switch owns the buffer
/// state and *validates* every mutation; admission **decisions** live in the
/// policies of the `smbm-core` crate. A typical slot looks like:
///
/// ```
/// use smbm_switch::{PortId, Work, WorkPacket, WorkSwitch, WorkSwitchConfig};
///
/// let cfg = WorkSwitchConfig::contiguous(2, 4)?; // ports with w = 1, 2
/// let mut sw = WorkSwitch::new(cfg);
///
/// // Arrival phase: the policy decided to accept this packet.
/// sw.admit(WorkPacket::new(PortId::new(1), Work::new(2)))?;
///
/// // Transmission phase at speedup C = 1.
/// let report = sw.transmit(1);
/// assert_eq!(report.transmitted, 0); // the 2-cycle packet needs another slot
/// sw.advance_slot();
/// assert_eq!(sw.transmit(1).transmitted, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct WorkSwitch {
    config: WorkSwitchConfig,
    queues: Vec<WorkQueue>,
    core: BufferCore,
    counters: Counters,
    now: Slot,
    completions_scratch: Vec<Slot>,
    transmitted_per_port: Vec<u64>,
    dirty: DirtyPorts,
}

impl WorkSwitch {
    /// Creates an empty switch from a validated configuration.
    pub fn new(config: WorkSwitchConfig) -> Self {
        let queues = config.works().iter().map(|w| WorkQueue::new(*w)).collect();
        WorkSwitch {
            transmitted_per_port: vec![0; config.ports()],
            dirty: DirtyPorts::new(config.ports()),
            core: BufferCore::new(config.buffer()),
            config,
            queues,
            counters: Counters::new(),
            now: Slot::ZERO,
            completions_scratch: Vec::new(),
        }
    }

    /// The switch configuration.
    pub fn config(&self) -> &WorkSwitchConfig {
        &self.config
    }

    /// Number of output ports `n`.
    pub fn ports(&self) -> usize {
        self.config.ports()
    }

    /// Shared buffer capacity `B`.
    pub fn buffer(&self) -> usize {
        self.config.buffer()
    }

    /// The shared slab of packet slots backing every queue.
    pub fn core(&self) -> &BufferCore {
        &self.core
    }

    /// Packets currently resident across all queues.
    pub fn occupancy(&self) -> usize {
        self.core.allocated()
    }

    /// Free buffer slots.
    pub fn free_space(&self) -> usize {
        self.core.free_slots()
    }

    /// True when the buffer holds `B` packets.
    pub fn is_full(&self) -> bool {
        self.core.free_slots() == 0
    }

    /// The current time slot.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Read access to an output queue.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range; use [`WorkSwitch::ports`] to bound
    /// iteration.
    pub fn queue(&self, port: PortId) -> &WorkQueue {
        &self.queues[port.index()]
    }

    /// Iterates over `(port, queue)` pairs.
    pub fn queues(&self) -> impl Iterator<Item = (PortId, &WorkQueue)> {
        self.queues
            .iter()
            .enumerate()
            .map(|(i, q)| (PortId::new(i), q))
    }

    /// Length of the longest output queue right now — the telemetry plane's
    /// queue-depth gauge tap.
    pub fn max_queue_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).max().unwrap_or(0)
    }

    /// Lifetime packet accounting.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Moves the ports whose queues changed since the last drain into `out`
    /// (cleared first). Incremental policies use this to refresh only the
    /// scores that can have moved instead of rescanning all `n` queues.
    pub fn drain_dirty_into(&mut self, out: &mut Vec<PortId>) {
        self.dirty.drain_into(out);
    }

    fn validate(&self, pkt: WorkPacket) -> Result<(), AdmitError> {
        let i = pkt.port().index();
        if i >= self.queues.len() {
            return Err(AdmitError::UnknownPort {
                port: pkt.port(),
                ports: self.queues.len(),
            });
        }
        let required = self.config.work(pkt.port());
        if pkt.work() != required {
            return Err(AdmitError::WorkMismatch {
                port: pkt.port(),
                packet_work: pkt.work().cycles(),
                port_work: required.cycles(),
            });
        }
        Ok(())
    }

    /// Admits `pkt` into its destination queue. Records the arrival.
    ///
    /// # Errors
    ///
    /// Fails with [`AdmitError::BufferFull`] when no space is free, or with a
    /// validation error for an unknown port / mismatched work label.
    pub fn admit(&mut self, pkt: WorkPacket) -> Result<(), AdmitError> {
        self.validate(pkt)?;
        if self.is_full() {
            return Err(AdmitError::BufferFull);
        }
        self.counters.record_arrival(1);
        self.counters.record_admission(1);
        self.queues[pkt.port().index()].push_back(&mut self.core, self.now);
        self.dirty.mark(pkt.port().index());
        Ok(())
    }

    /// Rejects `pkt` on arrival. Records the arrival and the drop.
    ///
    /// # Errors
    ///
    /// Fails with a validation error for an unknown port / mismatched work
    /// label (such a packet is not a legal arrival in the model at all).
    pub fn reject(&mut self, pkt: WorkPacket) -> Result<(), AdmitError> {
        self.validate(pkt)?;
        self.counters.record_arrival(1);
        self.counters.record_drop(1);
        Ok(())
    }

    /// Pushes out the tail packet of `victim`'s queue and admits `pkt` in the
    /// freed slot (the push-out primitive shared by LQD, BPD and LWD).
    ///
    /// # Errors
    ///
    /// Fails if the victim queue is empty, or on a validation error. The
    /// buffer need not be full (policies only push out when it is, but the
    /// primitive does not require it).
    pub fn push_out_and_admit(
        &mut self,
        victim: PortId,
        pkt: WorkPacket,
    ) -> Result<(), AdmitError> {
        self.validate(pkt)?;
        if victim.index() >= self.queues.len() {
            return Err(AdmitError::UnknownPort {
                port: victim,
                ports: self.queues.len(),
            });
        }
        if self.queues[victim.index()].is_empty() {
            return Err(AdmitError::EmptyQueue { port: victim });
        }
        self.queues[victim.index()]
            .pop_back(&mut self.core)
            .expect("checked non-empty");
        self.counters.record_push_out(1);
        self.counters.record_arrival(1);
        self.counters.record_admission(1);
        self.queues[pkt.port().index()].push_back(&mut self.core, self.now);
        self.dirty.mark(victim.index());
        self.dirty.mark(pkt.port().index());
        // occupancy unchanged: one out, one in.
        Ok(())
    }

    /// Runs the transmission phase: every non-empty queue receives `speedup`
    /// processing cycles, head-of-line first, transmitting packets whose
    /// residual work reaches zero.
    ///
    /// Completed packets are appended to `out` with latency information.
    pub fn transmit_into(&mut self, speedup: u32, out: &mut Vec<Transmitted>) -> PhaseReport {
        let mut report = PhaseReport::default();
        for (i, queue) in self.queues.iter_mut().enumerate() {
            if queue.is_empty() {
                continue;
            }
            self.completions_scratch.clear();
            let used = queue.process(&mut self.core, speedup, &mut self.completions_scratch);
            if used > 0 {
                // Any processed cycle changes this queue's residual work
                // W_i, so its policy score may have moved.
                self.dirty.mark(i);
            }
            report.cycles_used += used as u64;
            for &arrived in &self.completions_scratch {
                let t = Transmitted {
                    port: PortId::new(i),
                    value: Value::ONE,
                    arrived,
                    departed: self.now,
                };
                self.counters.record_transmission(1, t.latency());
                self.transmitted_per_port[i] += 1;
                report.transmitted += 1;
                report.value += 1;
                out.push(t);
            }
        }
        self.counters.record_cycles(report.cycles_used);
        report
    }

    /// Like [`WorkSwitch::transmit_into`], discarding per-packet details.
    pub fn transmit(&mut self, speedup: u32) -> PhaseReport {
        let mut scratch = Vec::new();
        self.transmit_into(speedup, &mut scratch)
    }

    /// Advances to the next time slot. Call once per slot, after the
    /// transmission phase.
    pub fn advance_slot(&mut self) {
        self.now = self.now.next();
    }

    /// Discards every resident packet (a "flushout" in the paper's
    /// simulations), returning how many were discarded. Counted as push-outs
    /// so conservation holds.
    pub fn flush(&mut self) -> u64 {
        let mut total = 0;
        for q in &mut self.queues {
            total += q.clear(&mut self.core);
        }
        self.dirty.mark_all();
        self.counters.record_flush(total, total);
        total
    }

    /// Verifies structural and conservation invariants; test/debug oracle.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let sum: usize = self.queues.iter().map(WorkQueue::len).sum();
        if sum != self.core.allocated() {
            return Err(format!(
                "slab allocation {} != sum of queue lengths {}",
                self.core.allocated(),
                sum
            ));
        }
        if self.core.capacity() != self.config.buffer() {
            return Err(format!(
                "slab capacity {} != configured buffer {}",
                self.core.capacity(),
                self.config.buffer()
            ));
        }
        self.core.check_accounting()?;
        for (i, q) in self.queues.iter().enumerate() {
            if !q.invariants_hold() {
                return Err(format!("queue {} residual invariant violated", i));
            }
        }
        self.counters
            .check_conservation(self.occupancy())
            .map_err(|e: ConservationError| e.to_string())?;
        // Every work-model packet is worth 1, so resident value == occupancy.
        self.counters
            .check_value_conservation(self.occupancy() as u64)
            .map_err(|e: ConservationError| e.to_string())
    }

    /// Convenience for building the packet that port `port` accepts in this
    /// switch (its work label is dictated by the configuration).
    pub fn packet_for(&self, port: PortId) -> WorkPacket {
        WorkPacket::new(port, self.config.work(port))
    }

    /// Packets transmitted per output port since construction, indexed by
    /// port — the basis of the fairness metrics (the paper motivates
    /// shared-memory designs by the tension between utilization and
    /// per-port fairness).
    pub fn transmitted_per_port(&self) -> &[u64] {
        &self.transmitted_per_port
    }

    /// Total residual work summed over all queues.
    pub fn total_work(&self) -> u64 {
        self.queues.iter().map(WorkQueue::total_work).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Work;

    fn switch(k: u32, b: usize) -> WorkSwitch {
        WorkSwitch::new(WorkSwitchConfig::contiguous(k, b).unwrap())
    }

    fn pkt(sw: &WorkSwitch, port: usize) -> WorkPacket {
        sw.packet_for(PortId::new(port))
    }

    #[test]
    fn admit_fills_buffer() {
        let mut sw = switch(2, 3);
        for _ in 0..3 {
            sw.admit(pkt(&sw, 0)).unwrap();
        }
        assert!(sw.is_full());
        assert_eq!(sw.admit(pkt(&sw, 1)), Err(AdmitError::BufferFull));
        sw.check_invariants().unwrap();
    }

    #[test]
    fn admit_validates_work_label() {
        let mut sw = switch(3, 4);
        let bad = WorkPacket::new(PortId::new(0), Work::new(2));
        assert!(matches!(
            sw.admit(bad),
            Err(AdmitError::WorkMismatch { .. })
        ));
        // A failed validation must not perturb counters.
        assert_eq!(sw.counters().arrived(), 0);
    }

    #[test]
    fn admit_validates_port() {
        let mut sw = switch(2, 4);
        let bad = WorkPacket::new(PortId::new(9), Work::new(1));
        assert!(matches!(sw.admit(bad), Err(AdmitError::UnknownPort { .. })));
    }

    #[test]
    fn reject_records_drop() {
        let mut sw = switch(2, 4);
        sw.reject(pkt(&sw, 0)).unwrap();
        assert_eq!(sw.counters().dropped(), 1);
        assert_eq!(sw.occupancy(), 0);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn push_out_and_admit_swaps_packets() {
        let mut sw = switch(2, 2);
        sw.admit(pkt(&sw, 1)).unwrap();
        sw.admit(pkt(&sw, 1)).unwrap();
        assert!(sw.is_full());
        sw.push_out_and_admit(PortId::new(1), pkt(&sw, 0)).unwrap();
        assert_eq!(sw.queue(PortId::new(0)).len(), 1);
        assert_eq!(sw.queue(PortId::new(1)).len(), 1);
        assert!(sw.is_full());
        assert_eq!(sw.counters().pushed_out(), 1);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn push_out_from_empty_queue_fails() {
        let mut sw = switch(2, 2);
        sw.admit(pkt(&sw, 0)).unwrap();
        let err = sw.push_out_and_admit(PortId::new(1), pkt(&sw, 0));
        assert_eq!(
            err,
            Err(AdmitError::EmptyQueue {
                port: PortId::new(1)
            })
        );
    }

    #[test]
    fn transmit_unit_work_every_slot() {
        let mut sw = switch(1, 4);
        for _ in 0..3 {
            sw.admit(pkt(&sw, 0)).unwrap();
        }
        let r = sw.transmit(1);
        assert_eq!(r.transmitted, 1);
        assert_eq!(r.cycles_used, 1);
        assert_eq!(sw.occupancy(), 2);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn transmit_respects_heterogeneous_work() {
        let mut sw = switch(3, 6);
        sw.admit(pkt(&sw, 0)).unwrap(); // w = 1
        sw.admit(pkt(&sw, 2)).unwrap(); // w = 3
        let r = sw.transmit(1);
        assert_eq!(r.transmitted, 1); // only the 1-cycle packet completes
        assert_eq!(r.cycles_used, 2); // both ports worked
        sw.advance_slot();
        assert_eq!(sw.transmit(1).transmitted, 0);
        sw.advance_slot();
        assert_eq!(sw.transmit(1).transmitted, 1);
        assert_eq!(sw.occupancy(), 0);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn transmit_with_speedup() {
        let mut sw = switch(2, 8);
        for _ in 0..4 {
            sw.admit(pkt(&sw, 0)).unwrap(); // w = 1
        }
        sw.admit(pkt(&sw, 1)).unwrap(); // w = 2
        let r = sw.transmit(2);
        // Port 0 finishes two unit packets; port 1 finishes its 2-cycle one.
        assert_eq!(r.transmitted, 3);
        assert_eq!(r.cycles_used, 4);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn transmit_reports_latency() {
        let mut sw = switch(1, 4);
        sw.admit(pkt(&sw, 0)).unwrap();
        sw.advance_slot();
        sw.advance_slot();
        let mut out = Vec::new();
        sw.transmit_into(1, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].latency(), 2);
        assert_eq!(sw.counters().max_latency(), 2);
    }

    #[test]
    fn flush_discards_everything() {
        let mut sw = switch(2, 4);
        for _ in 0..4 {
            sw.admit(pkt(&sw, 1)).unwrap();
        }
        assert_eq!(sw.flush(), 4);
        assert_eq!(sw.occupancy(), 0);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn total_work_sums_queues() {
        let mut sw = switch(3, 6);
        sw.admit(pkt(&sw, 0)).unwrap(); // 1
        sw.admit(pkt(&sw, 2)).unwrap(); // 3
        sw.admit(pkt(&sw, 2)).unwrap(); // 3
        assert_eq!(sw.total_work(), 7);
    }

    #[test]
    fn push_out_may_target_partially_processed_head() {
        let mut sw = switch(2, 2);
        sw.admit(pkt(&sw, 1)).unwrap(); // w = 2
        sw.transmit(1); // head residual now 1
        sw.admit(pkt(&sw, 0)).unwrap();
        assert!(sw.is_full());
        sw.push_out_and_admit(PortId::new(1), pkt(&sw, 0)).unwrap();
        assert!(sw.queue(PortId::new(1)).is_empty());
        assert_eq!(sw.queue(PortId::new(0)).len(), 2);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn conservation_holds_through_mixed_operations() {
        let mut sw = switch(3, 5);
        for _ in 0..5 {
            sw.admit(pkt(&sw, 2)).unwrap();
        }
        sw.reject(pkt(&sw, 0)).unwrap();
        sw.push_out_and_admit(PortId::new(2), pkt(&sw, 0)).unwrap();
        sw.transmit(1);
        sw.advance_slot();
        sw.transmit(1);
        sw.check_invariants().unwrap();
        let c = sw.counters();
        assert_eq!(c.arrived(), 7);
        assert_eq!(c.admitted(), 6);
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.pushed_out(), 1);
    }

    #[test]
    fn dirty_ports_track_mutations() {
        let mut sw = switch(2, 4);
        let mut dirty = Vec::new();
        sw.admit(pkt(&sw, 1)).unwrap();
        sw.drain_dirty_into(&mut dirty);
        assert_eq!(dirty, vec![PortId::new(1)]);
        sw.transmit(1);
        sw.drain_dirty_into(&mut dirty);
        assert_eq!(dirty, vec![PortId::new(1)]);
        // Nothing moved since: the set stays empty.
        sw.drain_dirty_into(&mut dirty);
        assert!(dirty.is_empty());
    }
}
