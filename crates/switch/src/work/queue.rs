//! A single FIFO output queue in the heterogeneous-processing model.

use crate::slab::{BufferCore, SlotList};
use crate::{Slot, Value, Work};

/// One output queue of a [`crate::WorkSwitch`].
///
/// Every packet in the queue requires the same processing `w` (the model
/// constraint of Section III-A); only the head-of-line packet may be
/// partially processed, tracked by `head_residual`. The queue is a
/// [`SlotList`] view over the switch's shared [`BufferCore`] slab: packet
/// storage (each resident packet's arrival slot) lives in the slab, so
/// mutations take the core as an argument while the policy-facing read API
/// (`len`, `total_work`, ...) works off inline cached aggregates.
#[derive(Debug, Clone)]
pub struct WorkQueue {
    work: Work,
    /// Residual cycles of the head packet; zero iff the queue is empty.
    head_residual: u32,
    /// Resident packets, front = head-of-line.
    list: SlotList,
}

impl WorkQueue {
    /// Creates an empty queue whose packets all require `work` cycles.
    pub fn new(work: Work) -> Self {
        WorkQueue {
            work,
            head_residual: 0,
            list: SlotList::new(),
        }
    }

    /// The fixed per-packet requirement `w_i` of this queue.
    pub fn work(&self) -> Work {
        self.work
    }

    /// Number of resident packets `|Q_i|`.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Residual cycles of the head-of-line packet (zero when empty).
    pub fn head_residual(&self) -> u32 {
        self.head_residual
    }

    /// Total remaining work `W_i`: the head's residual plus the full
    /// requirement of every packet behind it. This is the quantity the LWD
    /// policy maximizes over when choosing a push-out victim.
    ///
    /// ```
    /// use smbm_switch::{BufferCore, Slot, Work, WorkQueue};
    /// let mut core = BufferCore::new(4);
    /// let mut q = WorkQueue::new(Work::new(3));
    /// q.push_back(&mut core, Slot::ZERO);
    /// q.push_back(&mut core, Slot::ZERO);
    /// assert_eq!(q.total_work(), 6);
    /// ```
    pub fn total_work(&self) -> u64 {
        if self.list.is_empty() {
            0
        } else {
            self.head_residual as u64 + (self.list.len() as u64 - 1) * self.work.as_u64()
        }
    }

    /// Latency (slots until transmission, assuming no push-out and one cycle
    /// per slot) of the whole queue: identical to [`Self::total_work`] for a
    /// unit-speed port.
    pub fn drain_slots(&self) -> u64 {
        self.total_work()
    }

    /// Appends a packet that arrived during `slot`.
    pub fn push_back(&mut self, core: &mut BufferCore, slot: Slot) {
        if self.list.is_empty() {
            self.head_residual = self.work.cycles();
        }
        core.push_back(&mut self.list, Value::ONE, slot);
    }

    /// Removes the tail packet (the push-out victim position used by every
    /// push-out policy in the paper), returning its arrival slot.
    ///
    /// When the queue holds a single packet the tail *is* the partially
    /// processed head; its residual work is discarded with it.
    pub fn pop_back(&mut self, core: &mut BufferCore) -> Option<Slot> {
        let popped = core.pop_back(&mut self.list).map(|(_, arrived)| arrived);
        if self.list.is_empty() {
            self.head_residual = 0;
        }
        popped
    }

    /// Applies up to `cycles` processing cycles to the head of the queue,
    /// transmitting packets whose residual work reaches zero, in FIFO order.
    ///
    /// Returns the cycles used after appending the arrival slots of
    /// transmitted packets to `completions`; this can be less than `cycles`
    /// only if the queue empties (the port is work-conserving).
    pub fn process(
        &mut self,
        core: &mut BufferCore,
        cycles: u32,
        completions: &mut Vec<Slot>,
    ) -> u32 {
        let mut budget = cycles;
        while budget > 0 && !self.list.is_empty() {
            let step = budget.min(self.head_residual);
            self.head_residual -= step;
            budget -= step;
            if self.head_residual == 0 {
                let (_, arrived) = core
                    .pop_front(&mut self.list)
                    .expect("non-empty queue has a head");
                completions.push(arrived);
                if !self.list.is_empty() {
                    self.head_residual = self.work.cycles();
                }
            }
        }
        cycles - budget
    }

    /// Removes every resident packet, returning how many were discarded.
    pub fn clear(&mut self, core: &mut BufferCore) -> u64 {
        let n = core.clear(&mut self.list);
        self.head_residual = 0;
        n
    }

    /// Arrival slots of resident packets in FIFO order (head first).
    pub fn arrival_slots<'a>(&self, core: &'a BufferCore) -> impl Iterator<Item = Slot> + 'a {
        core.iter(&self.list).map(|(_, arrived)| arrived)
    }

    /// Checks the internal invariants, used by tests and the switch's
    /// self-check: the head residual is in `1..=w` iff the queue is
    /// non-empty.
    pub fn invariants_hold(&self) -> bool {
        if self.list.is_empty() {
            self.head_residual == 0
        } else {
            self.head_residual >= 1 && self.head_residual <= self.work.cycles()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(w: u32) -> (BufferCore, WorkQueue) {
        (BufferCore::new(16), WorkQueue::new(Work::new(w)))
    }

    #[test]
    fn new_queue_is_empty() {
        let (_core, q) = q(3);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.total_work(), 0);
        assert_eq!(q.head_residual(), 0);
        assert!(q.invariants_hold());
    }

    #[test]
    fn push_sets_head_residual() {
        let (mut core, mut q) = q(3);
        q.push_back(&mut core, Slot::ZERO);
        assert_eq!(q.head_residual(), 3);
        assert_eq!(q.total_work(), 3);
        q.push_back(&mut core, Slot::ZERO);
        assert_eq!(q.total_work(), 6);
        assert!(q.invariants_hold());
    }

    #[test]
    fn total_work_accounts_for_partial_head() {
        let (mut core, mut q) = q(4);
        q.push_back(&mut core, Slot::ZERO);
        q.push_back(&mut core, Slot::ZERO);
        let mut done = Vec::new();
        let used = q.process(&mut core, 1, &mut done);
        assert_eq!(used, 1);
        assert!(done.is_empty());
        assert_eq!(q.head_residual(), 3);
        assert_eq!(q.total_work(), 3 + 4);
    }

    #[test]
    fn process_transmits_in_fifo_order() {
        let (mut core, mut q) = q(2);
        q.push_back(&mut core, Slot::new(1));
        q.push_back(&mut core, Slot::new(2));
        let mut done = Vec::new();
        // 4 cycles complete both packets.
        let used = q.process(&mut core, 4, &mut done);
        assert_eq!(used, 4);
        assert_eq!(done, vec![Slot::new(1), Slot::new(2)]);
        assert!(q.is_empty());
        assert!(q.invariants_hold());
        core.check_accounting().unwrap();
    }

    #[test]
    fn process_stops_when_queue_empties() {
        let (mut core, mut q) = q(2);
        q.push_back(&mut core, Slot::ZERO);
        let mut done = Vec::new();
        let used = q.process(&mut core, 10, &mut done);
        assert_eq!(used, 2);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn process_partial_packet_spans_slots() {
        let (mut core, mut q) = q(3);
        q.push_back(&mut core, Slot::ZERO);
        let mut done = Vec::new();
        assert_eq!(q.process(&mut core, 1, &mut done), 1);
        assert_eq!(q.process(&mut core, 1, &mut done), 1);
        assert!(done.is_empty());
        assert_eq!(q.process(&mut core, 1, &mut done), 1);
        assert_eq!(done.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_back_removes_tail_not_head() {
        let (mut core, mut q) = q(3);
        q.push_back(&mut core, Slot::new(1));
        q.push_back(&mut core, Slot::new(2));
        let mut done = Vec::new();
        q.process(&mut core, 1, &mut done); // head now has residual 2
        assert_eq!(q.pop_back(&mut core), Some(Slot::new(2)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.head_residual(), 2); // head untouched
        assert!(q.invariants_hold());
    }

    #[test]
    fn pop_back_on_singleton_discards_partial_head() {
        let (mut core, mut q) = q(3);
        q.push_back(&mut core, Slot::new(1));
        let mut done = Vec::new();
        q.process(&mut core, 2, &mut done);
        assert_eq!(q.head_residual(), 1);
        assert_eq!(q.pop_back(&mut core), Some(Slot::new(1)));
        assert!(q.is_empty());
        assert_eq!(q.head_residual(), 0);
        assert!(q.invariants_hold());
    }

    #[test]
    fn pop_back_on_empty_returns_none() {
        let (mut core, mut q) = q(1);
        assert_eq!(q.pop_back(&mut core), None);
    }

    #[test]
    fn clear_reports_count() {
        let (mut core, mut q) = q(2);
        q.push_back(&mut core, Slot::ZERO);
        q.push_back(&mut core, Slot::ZERO);
        assert_eq!(q.clear(&mut core), 2);
        assert!(q.is_empty());
        assert!(q.invariants_hold());
        core.check_accounting().unwrap();
    }

    #[test]
    fn speedup_processes_multiple_packets_per_slot() {
        let (mut core, mut q) = q(1);
        for i in 0..5 {
            q.push_back(&mut core, Slot::new(i));
        }
        let mut done = Vec::new();
        let used = q.process(&mut core, 3, &mut done);
        assert_eq!(used, 3);
        assert_eq!(done.len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn arrival_slots_iterates_fifo() {
        let (mut core, mut q) = q(2);
        q.push_back(&mut core, Slot::new(4));
        q.push_back(&mut core, Slot::new(7));
        let slots: Vec<_> = q.arrival_slots(&core).collect();
        assert_eq!(slots, vec![Slot::new(4), Slot::new(7)]);
    }
}
