//! Shared-memory switch state machine for the combined model (extension):
//! per-port work requirements plus per-packet values; the objective is
//! total transmitted value.

use crate::slab::BufferCore;
use crate::{
    AdmitError, CombinedQueue, ConservationError, Counters, DirtyPorts, PortId, Slot, Transmitted,
    Value, Work, WorkSwitchConfig,
};

/// A packet of the combined model: destination port, the port's work
/// requirement, and an intrinsic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CombinedPacket {
    port: PortId,
    work: Work,
    value: Value,
}

impl CombinedPacket {
    /// Creates a packet.
    pub const fn new(port: PortId, work: Work, value: Value) -> Self {
        CombinedPacket { port, work, value }
    }

    /// Destination output port.
    pub const fn port(self) -> PortId {
        self.port
    }

    /// Required processing.
    pub const fn work(self) -> Work {
        self.work
    }

    /// Intrinsic value.
    pub const fn value(self) -> Value {
        self.value
    }

    /// Value per processing cycle — the natural greedy ordering key of the
    /// combined model.
    pub fn density(self) -> f64 {
        self.value.get() as f64 / f64::from(self.work.cycles())
    }
}

impl std::fmt::Display for CombinedPacket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}/{} -> {}]", self.value, self.work, self.port)
    }
}

/// Outcome summary of one combined-model transmission phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CombinedPhaseReport {
    /// Packets transmitted during the phase.
    pub transmitted: u64,
    /// Total value carried out (the objective).
    pub value: u64,
    /// Processing cycles consumed.
    pub cycles_used: u64,
}

/// The combined-model shared-memory switch: reuses [`WorkSwitchConfig`]
/// (buffer `B`, per-port works) and carries per-packet values. Every resident
/// packet — in service or backlogged — holds a slot of the shared
/// [`BufferCore`] slab.
///
/// ```
/// use smbm_switch::{CombinedPacket, CombinedSwitch, PortId, Value, Work, WorkSwitchConfig};
///
/// let cfg = WorkSwitchConfig::contiguous(2, 4)?;
/// let mut sw = CombinedSwitch::new(cfg);
/// sw.admit(CombinedPacket::new(PortId::new(0), Work::new(1), Value::new(7)))?;
/// assert_eq!(sw.transmit(1).value, 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CombinedSwitch {
    config: WorkSwitchConfig,
    queues: Vec<CombinedQueue>,
    core: BufferCore,
    counters: Counters,
    now: Slot,
    scratch: Vec<(Value, Slot)>,
    transmitted_per_port: Vec<u64>,
    dirty: DirtyPorts,
}

impl CombinedSwitch {
    /// Creates an empty switch from a validated configuration.
    pub fn new(config: WorkSwitchConfig) -> Self {
        CombinedSwitch {
            queues: config
                .works()
                .iter()
                .map(|w| CombinedQueue::new(*w))
                .collect(),
            transmitted_per_port: vec![0; config.ports()],
            dirty: DirtyPorts::new(config.ports()),
            core: BufferCore::new(config.buffer()),
            config,
            counters: Counters::new(),
            now: Slot::ZERO,
            scratch: Vec::new(),
        }
    }

    /// The switch configuration.
    pub fn config(&self) -> &WorkSwitchConfig {
        &self.config
    }

    /// Number of output ports.
    pub fn ports(&self) -> usize {
        self.config.ports()
    }

    /// Shared buffer capacity.
    pub fn buffer(&self) -> usize {
        self.config.buffer()
    }

    /// The shared slab of packet slots backing every queue.
    pub fn core(&self) -> &BufferCore {
        &self.core
    }

    /// Packets currently resident.
    pub fn occupancy(&self) -> usize {
        self.core.allocated()
    }

    /// True when the buffer holds `B` packets.
    pub fn is_full(&self) -> bool {
        self.core.free_slots() == 0
    }

    /// The current slot.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Read access to an output queue.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn queue(&self, port: PortId) -> &CombinedQueue {
        &self.queues[port.index()]
    }

    /// Iterates over `(port, queue)` pairs.
    pub fn queues(&self) -> impl Iterator<Item = (PortId, &CombinedQueue)> {
        self.queues
            .iter()
            .enumerate()
            .map(|(i, q)| (PortId::new(i), q))
    }

    /// Length of the longest output queue right now — the telemetry plane's
    /// queue-depth gauge tap.
    pub fn max_queue_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).max().unwrap_or(0)
    }

    /// Lifetime accounting.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Moves the ports whose queues changed since the last drain into `out`
    /// (cleared first); see [`crate::DirtyPorts`].
    pub fn drain_dirty_into(&mut self, out: &mut Vec<PortId>) {
        self.dirty.drain_into(out);
    }

    fn validate(&self, pkt: CombinedPacket) -> Result<(), AdmitError> {
        if pkt.port().index() >= self.queues.len() {
            return Err(AdmitError::UnknownPort {
                port: pkt.port(),
                ports: self.queues.len(),
            });
        }
        let required = self.config.work(pkt.port());
        if pkt.work() != required {
            return Err(AdmitError::WorkMismatch {
                port: pkt.port(),
                packet_work: pkt.work().cycles(),
                port_work: required.cycles(),
            });
        }
        Ok(())
    }

    /// Admits `pkt` into its destination queue.
    ///
    /// # Errors
    ///
    /// Fails with [`AdmitError::BufferFull`] when no space is free, or with
    /// a validation error.
    pub fn admit(&mut self, pkt: CombinedPacket) -> Result<(), AdmitError> {
        self.validate(pkt)?;
        if self.is_full() {
            return Err(AdmitError::BufferFull);
        }
        self.counters.record_arrival(pkt.value().get());
        self.counters.record_admission(pkt.value().get());
        self.queues[pkt.port().index()].insert(&mut self.core, pkt.value(), self.now);
        self.dirty.mark(pkt.port().index());
        Ok(())
    }

    /// Rejects `pkt` on arrival.
    ///
    /// # Errors
    ///
    /// Fails with a validation error.
    pub fn reject(&mut self, pkt: CombinedPacket) -> Result<(), AdmitError> {
        self.validate(pkt)?;
        self.counters.record_arrival(pkt.value().get());
        self.counters.record_drop(pkt.value().get());
        Ok(())
    }

    /// Evicts the minimal-value packet of `victim`'s queue and admits `pkt`.
    /// When `victim == pkt.port()` this is the virtual-add semantics (the
    /// eviction may remove the arrival itself).
    ///
    /// Eviction prefers the backlog and only takes the in-service packet when
    /// the backlog is empty. As in [`crate::ValueSwitch`], the slab of
    /// exactly `B` slots forces eviction *before* insertion; the self-evicting
    /// configurations (`pkt` would join the victim's backlog at or below its
    /// minimum — including an empty backlog, where the arrival itself would
    /// be the sole backlog entry popped) short-circuit to a net drop with
    /// identical outcome to the pre-slab insert-then-evict order.
    ///
    /// # Errors
    ///
    /// Fails if the victim queue is empty (and differs from the
    /// destination), or on a validation error.
    pub fn push_out_and_admit(
        &mut self,
        victim: PortId,
        pkt: CombinedPacket,
    ) -> Result<Value, AdmitError> {
        self.validate(pkt)?;
        if victim.index() >= self.queues.len() {
            return Err(AdmitError::UnknownPort {
                port: victim,
                ports: self.queues.len(),
            });
        }
        if victim != pkt.port() && self.queues[victim.index()].is_empty() {
            return Err(AdmitError::EmptyQueue { port: victim });
        }
        self.counters.record_arrival(pkt.value().get());
        self.counters.record_admission(pkt.value().get());
        let own = &self.queues[pkt.port().index()];
        let evicted = if victim == pkt.port()
            && (own.backlog_is_empty()
                || own
                    .backlog_min_value()
                    .is_some_and(|min| pkt.value() <= min))
        {
            // The arrival would become the backlog's minimum and immediately
            // be popped again: a net drop.
            pkt.value()
        } else {
            let out = self.queues[victim.index()]
                .evict_min(&mut self.core)
                .expect("victim queue non-empty");
            if victim == pkt.port() {
                // The queue was non-empty before the (backlog) eviction, so
                // under insert-then-evict the arrival always landed in the
                // backlog — never in service — even if the eviction just
                // emptied the backlog.
                self.queues[pkt.port().index()].insert_backlog(
                    &mut self.core,
                    pkt.value(),
                    self.now,
                );
            } else {
                self.queues[pkt.port().index()].insert(&mut self.core, pkt.value(), self.now);
            }
            out
        };
        self.counters.record_push_out(evicted.get());
        self.dirty.mark(victim.index());
        self.dirty.mark(pkt.port().index());
        Ok(evicted)
    }

    /// Runs the transmission phase: every queue receives `speedup` cycles.
    ///
    /// Completed packets are appended to `out` with latency information.
    pub fn transmit_into(
        &mut self,
        speedup: u32,
        out: &mut Vec<Transmitted>,
    ) -> CombinedPhaseReport {
        let mut report = CombinedPhaseReport::default();
        for (i, q) in self.queues.iter_mut().enumerate() {
            if q.is_empty() {
                continue;
            }
            self.scratch.clear();
            let used = q.process(&mut self.core, speedup, &mut self.scratch);
            if used > 0 {
                self.dirty.mark(i);
            }
            report.cycles_used += u64::from(used);
            for &(value, arrived) in &self.scratch {
                let t = Transmitted {
                    port: PortId::new(i),
                    value,
                    arrived,
                    departed: self.now,
                };
                self.counters.record_transmission(value.get(), t.latency());
                self.transmitted_per_port[i] += 1;
                report.transmitted += 1;
                report.value += value.get();
                out.push(t);
            }
        }
        self.counters.record_cycles(report.cycles_used);
        report
    }

    /// Like [`CombinedSwitch::transmit_into`], discarding per-packet details.
    pub fn transmit(&mut self, speedup: u32) -> CombinedPhaseReport {
        let mut scratch = Vec::new();
        self.transmit_into(speedup, &mut scratch)
    }

    /// Packets transmitted per output port since construction.
    pub fn transmitted_per_port(&self) -> &[u64] {
        &self.transmitted_per_port
    }

    /// Advances to the next slot.
    pub fn advance_slot(&mut self) {
        self.now = self.now.next();
    }

    /// Discards every resident packet (flushout).
    pub fn flush(&mut self) -> u64 {
        let flushed_value = self.total_value();
        let mut total = 0;
        for q in &mut self.queues {
            total += q.clear(&mut self.core);
        }
        self.dirty.mark_all();
        self.counters.record_flush(total, flushed_value);
        total
    }

    /// Total value resident in the buffer.
    pub fn total_value(&self) -> u64 {
        self.queues.iter().map(CombinedQueue::total_value).sum()
    }

    /// Smallest value currently admitted anywhere (ties toward the longest
    /// queue).
    pub fn global_min_value(&self) -> Option<(PortId, Value)> {
        let mut best: Option<(PortId, Value, usize)> = None;
        for (port, q) in self.queues() {
            let Some(v) = q.min_value() else { continue };
            let better = match best {
                None => true,
                Some((_, bv, blen)) => v < bv || (v == bv && q.len() > blen),
            };
            if better {
                best = Some((port, v, q.len()));
            }
        }
        best.map(|(p, v, _)| (p, v))
    }

    /// Verifies structural and conservation invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let sum: usize = self.queues.iter().map(CombinedQueue::len).sum();
        if sum != self.core.allocated() {
            return Err(format!(
                "slab allocation {} != sum of queue lengths {}",
                self.core.allocated(),
                sum
            ));
        }
        if self.core.capacity() != self.config.buffer() {
            return Err(format!(
                "slab capacity {} != configured buffer {}",
                self.core.capacity(),
                self.config.buffer()
            ));
        }
        self.core.check_accounting()?;
        for (i, q) in self.queues.iter().enumerate() {
            if !q.invariants_hold(&self.core) {
                return Err(format!("queue {i} invariant violated"));
            }
        }
        self.counters
            .check_conservation(self.occupancy())
            .map_err(|e: ConservationError| e.to_string())?;
        self.counters
            .check_value_conservation(self.total_value())
            .map_err(|e: ConservationError| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch(k: u32, b: usize) -> CombinedSwitch {
        CombinedSwitch::new(WorkSwitchConfig::contiguous(k, b).unwrap())
    }

    fn pkt(sw: &CombinedSwitch, port: usize, v: u64) -> CombinedPacket {
        let p = PortId::new(port);
        CombinedPacket::new(p, sw.config().work(p), Value::new(v))
    }

    #[test]
    fn admit_and_transmit_by_value_order() {
        let mut sw = switch(2, 4);
        sw.admit(pkt(&sw, 0, 3)).unwrap();
        sw.admit(pkt(&sw, 0, 9)).unwrap();
        // w = 1 port: one packet per slot; the 3 entered service first
        // (run-to-completion), the 9 follows.
        assert_eq!(sw.transmit(1).value, 3);
        sw.advance_slot();
        assert_eq!(sw.transmit(1).value, 9);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn heavy_port_takes_w_slots() {
        let mut sw = switch(2, 4);
        sw.admit(pkt(&sw, 1, 5)).unwrap(); // w = 2
        assert_eq!(sw.transmit(1).value, 0);
        sw.advance_slot();
        assert_eq!(sw.transmit(1).value, 5);
    }

    #[test]
    fn push_out_virtual_add_and_validation() {
        let mut sw = switch(2, 2);
        sw.admit(pkt(&sw, 1, 8)).unwrap();
        sw.admit(pkt(&sw, 1, 6)).unwrap();
        assert!(sw.is_full());
        let evicted = sw
            .push_out_and_admit(PortId::new(1), pkt(&sw, 0, 4))
            .unwrap();
        assert_eq!(evicted, Value::new(6));
        assert_eq!(sw.queue(PortId::new(0)).len(), 1);
        sw.check_invariants().unwrap();

        let bad = CombinedPacket::new(PortId::new(0), Work::new(9), Value::new(1));
        assert!(matches!(
            sw.admit(bad),
            Err(AdmitError::WorkMismatch { .. })
        ));
    }

    #[test]
    fn self_push_out_with_service_only_queue_is_net_drop() {
        // The destination queue holds only an in-service packet: under
        // insert-then-evict the arrival joins the backlog and is popped right
        // back out (eviction prefers the backlog). The service packet stays.
        let mut sw = switch(1, 1);
        sw.admit(pkt(&sw, 0, 9)).unwrap();
        assert!(sw.is_full());
        let evicted = sw
            .push_out_and_admit(PortId::new(0), pkt(&sw, 0, 4))
            .unwrap();
        assert_eq!(evicted, Value::new(4));
        assert_eq!(sw.queue(PortId::new(0)).len(), 1);
        assert_eq!(sw.total_value(), 9);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn self_push_out_displaces_backlog_minimum() {
        let mut sw = switch(1, 3);
        sw.admit(pkt(&sw, 0, 9)).unwrap(); // enters service
        sw.admit(pkt(&sw, 0, 2)).unwrap(); // backlog
        sw.admit(pkt(&sw, 0, 5)).unwrap(); // backlog
        let evicted = sw
            .push_out_and_admit(PortId::new(0), pkt(&sw, 0, 7))
            .unwrap();
        assert_eq!(evicted, Value::new(2));
        assert_eq!(sw.total_value(), 21);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn density_is_value_per_cycle() {
        let p = CombinedPacket::new(PortId::new(0), Work::new(4), Value::new(6));
        assert!((p.density() - 1.5).abs() < 1e-12);
        assert_eq!(p.to_string(), "[$6/4cy -> port#1]");
    }

    #[test]
    fn global_min_and_flush() {
        let mut sw = switch(3, 6);
        sw.admit(pkt(&sw, 0, 4)).unwrap();
        sw.admit(pkt(&sw, 2, 2)).unwrap();
        assert_eq!(sw.global_min_value(), Some((PortId::new(2), Value::new(2))));
        assert_eq!(sw.flush(), 2);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn conservation_through_mixed_operations() {
        let mut sw = switch(3, 4);
        for v in [5, 1, 7, 2] {
            sw.admit(pkt(&sw, 2, v)).unwrap();
        }
        sw.reject(pkt(&sw, 0, 9)).unwrap();
        sw.push_out_and_admit(PortId::new(2), pkt(&sw, 0, 6))
            .unwrap();
        sw.transmit(2);
        sw.advance_slot();
        sw.transmit(2);
        sw.check_invariants().unwrap();
        assert_eq!(sw.counters().arrived(), 6);
    }
}
