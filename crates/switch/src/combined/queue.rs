//! A single output queue in the *combined* model (extension): per-port work
//! requirements as in Section III, per-packet values as in Section IV.
//!
//! Processing order is priority-by-value (Section IV's "most favourable
//! order") but **run-to-completion**: the packet in service is never
//! preempted, matching the paper's run-for-completion motivation. New
//! arrivals join a value-sorted backlog; when the serviced packet completes,
//! the most valuable backlog packet enters service.
//!
//! Storage is a pair of [`SlotList`] views over the switch's shared
//! [`BufferCore`] slab: the descending-value backlog, and a one-slot list
//! pinning the in-service packet's buffer slot (so the switch's occupancy is
//! exactly the slab's allocated count). The serviced packet's state is also
//! cached inline as [`InService`] for the policy-facing read API.

use crate::slab::{BufferCore, SlotList};
use crate::{Slot, Value, Work};

/// A packet in service: its value, remaining cycles, and arrival slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InService {
    /// Intrinsic value.
    pub value: Value,
    /// Remaining processing cycles (always >= 1).
    pub residual: u32,
    /// Arrival slot.
    pub arrived: Slot,
}

/// One output queue of a [`crate::CombinedSwitch`].
#[derive(Debug, Clone)]
pub struct CombinedQueue {
    work: Work,
    in_service: Option<InService>,
    /// The buffer slot held by the in-service packet (len <= 1).
    service_slot: SlotList,
    /// Backlog sorted by value, descending; ties keep arrival order.
    backlog: SlotList,
    /// Cached sum of all resident values (service + backlog).
    value_sum: u64,
    /// Cached smallest backlog value (the backlog tail).
    backlog_min: Option<Value>,
}

impl CombinedQueue {
    /// Creates an empty queue whose packets all require `work` cycles.
    pub fn new(work: Work) -> Self {
        CombinedQueue {
            work,
            in_service: None,
            service_slot: SlotList::new(),
            backlog: SlotList::new(),
            value_sum: 0,
            backlog_min: None,
        }
    }

    /// The fixed per-packet requirement of this queue.
    pub fn work(&self) -> Work {
        self.work
    }

    /// Number of resident packets (service + backlog).
    pub fn len(&self) -> usize {
        self.backlog.len() + usize::from(self.in_service.is_some())
    }

    /// True when no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.in_service.is_none() && self.backlog.is_empty()
    }

    /// The packet currently in service, if any.
    pub fn in_service(&self) -> Option<&InService> {
        self.in_service.as_ref()
    }

    /// True when the backlog holds no packets (the serviced packet, if any,
    /// is not part of the backlog).
    pub fn backlog_is_empty(&self) -> bool {
        self.backlog.is_empty()
    }

    /// Smallest backlog value (the push-out victim among backlog packets).
    pub fn backlog_min_value(&self) -> Option<Value> {
        self.backlog_min
    }

    /// Total outstanding work: the serviced packet's residual plus the full
    /// requirement of every backlog packet.
    pub fn total_work(&self) -> u64 {
        self.in_service.map_or(0, |s| s.residual as u64)
            + self.backlog.len() as u64 * self.work.as_u64()
    }

    /// Sum of resident values.
    pub fn total_value(&self) -> u64 {
        self.value_sum
    }

    /// Average resident value, `None` when empty.
    pub fn average_value(&self) -> Option<f64> {
        let n = self.len();
        (n > 0).then(|| self.value_sum as f64 / n as f64)
    }

    /// Smallest resident value (the push-out victim's value).
    pub fn min_value(&self) -> Option<Value> {
        let service = self.in_service.map(|s| s.value);
        match (self.backlog_min, service) {
            (Some(b), Some(s)) => Some(b.min(s)),
            (b, s) => b.or(s),
        }
    }

    fn refresh_backlog_min(&mut self, core: &BufferCore) {
        self.backlog_min = core.back(&self.backlog).map(|(v, _)| v);
    }

    /// Inserts a packet of value `value` arriving at `slot`. If the queue
    /// was idle the packet enters service immediately.
    pub fn insert(&mut self, core: &mut BufferCore, value: Value, slot: Slot) {
        self.value_sum += value.get();
        if self.in_service.is_none() && self.backlog.is_empty() {
            self.in_service = Some(InService {
                value,
                residual: self.work.cycles(),
                arrived: slot,
            });
            core.push_back(&mut self.service_slot, value, slot);
            return;
        }
        core.insert_desc(&mut self.backlog, value, slot);
        self.refresh_backlog_min(core);
    }

    /// Inserts a packet directly into the backlog, never entering service —
    /// the re-admission half of the switch's push-out primitive, which in
    /// the pre-slab insert-then-evict order always saw a non-empty queue.
    pub fn insert_backlog(&mut self, core: &mut BufferCore, value: Value, slot: Slot) {
        self.value_sum += value.get();
        core.insert_desc(&mut self.backlog, value, slot);
        self.refresh_backlog_min(core);
    }

    /// Evicts the lowest-value packet: the backlog minimum, or the serviced
    /// packet when the backlog is empty (its partial work is lost). Returns
    /// the evicted value.
    pub fn evict_min(&mut self, core: &mut BufferCore) -> Option<Value> {
        if let Some((v, _)) = core.pop_back(&mut self.backlog) {
            self.value_sum -= v.get();
            self.refresh_backlog_min(core);
            return Some(v);
        }
        let s = self.in_service.take()?;
        core.pop_back(&mut self.service_slot)
            .expect("in-service packet holds a slot");
        self.value_sum -= s.value.get();
        Some(s.value)
    }

    /// Applies up to `cycles` to the serviced packet (promoting from the
    /// backlog as packets complete). Completed packets' `(value, latency
    /// source slot)` pairs are appended to `completions`. Returns cycles
    /// actually used.
    pub fn process(
        &mut self,
        core: &mut BufferCore,
        cycles: u32,
        completions: &mut Vec<(Value, Slot)>,
    ) -> u32 {
        let mut budget = cycles;
        while budget > 0 {
            let Some(current) = self.in_service.as_mut() else {
                // Promote the most valuable backlog packet.
                let Some((value, arrived)) = core.pop_front(&mut self.backlog) else {
                    break;
                };
                self.refresh_backlog_min(core);
                core.push_back(&mut self.service_slot, value, arrived);
                self.in_service = Some(InService {
                    value,
                    residual: self.work.cycles(),
                    arrived,
                });
                continue;
            };
            let step = budget.min(current.residual);
            current.residual -= step;
            budget -= step;
            if current.residual == 0 {
                let done = self.in_service.take().expect("current exists");
                core.pop_back(&mut self.service_slot)
                    .expect("in-service packet holds a slot");
                self.value_sum -= done.value.get();
                completions.push((done.value, done.arrived));
            }
        }
        cycles - budget
    }

    /// Removes every resident packet, returning how many were discarded.
    pub fn clear(&mut self, core: &mut BufferCore) -> u64 {
        let n = core.clear(&mut self.backlog) + core.clear(&mut self.service_slot);
        self.in_service = None;
        self.value_sum = 0;
        self.backlog_min = None;
        n
    }

    /// Checks internal invariants: descending backlog, a correct sum, the
    /// service cache matching its pinned slot, and a fresh backlog-min cache.
    pub fn invariants_hold(&self, core: &BufferCore) -> bool {
        let sorted = core.is_sorted_desc(&self.backlog);
        let sum: u64 = core.iter(&self.backlog).map(|(v, _)| v.get()).sum::<u64>()
            + self.in_service.map_or(0, |s| s.value.get());
        let service_ok = match self.in_service {
            None => self.service_slot.is_empty(),
            Some(s) => {
                s.residual >= 1
                    && s.residual <= self.work.cycles()
                    && core.front(&self.service_slot) == Some((s.value, s.arrived))
                    && self.service_slot.len() == 1
            }
        };
        let min_ok = self.backlog_min == core.back(&self.backlog).map(|(v, _)| v);
        sorted && sum == self.value_sum && service_ok && min_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(w: u32) -> (BufferCore, CombinedQueue) {
        (BufferCore::new(16), CombinedQueue::new(Work::new(w)))
    }

    #[test]
    fn first_insert_enters_service() {
        let (mut core, mut q) = q(3);
        q.insert(&mut core, Value::new(5), Slot::ZERO);
        assert_eq!(q.len(), 1);
        assert_eq!(q.in_service().unwrap().residual, 3);
        assert_eq!(q.total_work(), 3);
        assert!(q.invariants_hold(&core));
    }

    #[test]
    fn backlog_sorted_desc_and_totals_track() {
        let (mut core, mut q) = q(2);
        for v in [4, 9, 1] {
            q.insert(&mut core, Value::new(v), Slot::ZERO);
        }
        // 4 is in service; backlog = [9, 1].
        assert_eq!(q.in_service().unwrap().value, Value::new(4));
        assert_eq!(q.total_value(), 14);
        assert_eq!(q.total_work(), 2 + 2 * 2);
        assert_eq!(q.min_value(), Some(Value::new(1)));
        assert!(q.invariants_hold(&core));
    }

    #[test]
    fn service_is_not_preempted_but_promotion_is_by_value() {
        let (mut core, mut q) = q(2);
        q.insert(&mut core, Value::new(1), Slot::ZERO); // enters service
        q.insert(&mut core, Value::new(9), Slot::ZERO);
        q.insert(&mut core, Value::new(5), Slot::ZERO);
        let mut done = Vec::new();
        // Two cycles: the 1 completes (run-to-completion, no preemption).
        assert_eq!(q.process(&mut core, 2, &mut done), 2);
        assert_eq!(done, vec![(Value::new(1), Slot::ZERO)]);
        // The 9 is promoted at the next processing opportunity, not the 5.
        assert_eq!(q.process(&mut core, 1, &mut done), 1);
        let s = q.in_service().unwrap();
        assert_eq!(s.value, Value::new(9));
        assert_eq!(s.residual, 1);
        assert!(q.invariants_hold(&core));
    }

    #[test]
    fn process_spans_multiple_packets_with_speedup() {
        let (mut core, mut q) = q(1);
        for v in [3, 2, 1] {
            q.insert(&mut core, Value::new(v), Slot::ZERO);
        }
        let mut done = Vec::new();
        assert_eq!(q.process(&mut core, 2, &mut done), 2);
        let values: Vec<u64> = done.iter().map(|&(v, _)| v.get()).collect();
        assert_eq!(values, vec![3, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn evict_prefers_backlog_minimum() {
        let (mut core, mut q) = q(4);
        q.insert(&mut core, Value::new(2), Slot::ZERO); // in service
        q.insert(&mut core, Value::new(7), Slot::ZERO);
        q.insert(&mut core, Value::new(3), Slot::ZERO);
        assert_eq!(q.evict_min(&mut core), Some(Value::new(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.in_service().unwrap().value, Value::new(2));
        assert!(q.invariants_hold(&core));
    }

    #[test]
    fn evict_falls_back_to_service() {
        let (mut core, mut q) = q(4);
        q.insert(&mut core, Value::new(2), Slot::ZERO);
        let mut done = Vec::new();
        q.process(&mut core, 1, &mut done); // partial work
        assert_eq!(q.evict_min(&mut core), Some(Value::new(2)));
        assert!(q.is_empty());
        assert_eq!(q.total_value(), 0);
        assert!(q.invariants_hold(&core));
        core.check_accounting().unwrap();
    }

    #[test]
    fn min_value_considers_service_packet() {
        let (mut core, mut q) = q(2);
        q.insert(&mut core, Value::new(1), Slot::ZERO); // service
        q.insert(&mut core, Value::new(5), Slot::ZERO); // backlog
        assert_eq!(q.min_value(), Some(Value::new(1)));
    }

    #[test]
    fn clear_resets_everything() {
        let (mut core, mut q) = q(2);
        q.insert(&mut core, Value::new(5), Slot::ZERO);
        q.insert(&mut core, Value::new(3), Slot::ZERO);
        assert_eq!(q.clear(&mut core), 2);
        assert!(q.is_empty());
        assert_eq!(q.total_work(), 0);
        assert!(q.invariants_hold(&core));
        core.check_accounting().unwrap();
    }

    #[test]
    fn idle_queue_uses_no_cycles() {
        let (mut core, mut q) = q(2);
        let mut done = Vec::new();
        assert_eq!(q.process(&mut core, 5, &mut done), 0);
        assert!(done.is_empty());
    }
}
