//! A single output queue in the *combined* model (extension): per-port work
//! requirements as in Section III, per-packet values as in Section IV.
//!
//! Processing order is priority-by-value (Section IV's "most favourable
//! order") but **run-to-completion**: the packet in service is never
//! preempted, matching the paper's run-for-completion motivation. New
//! arrivals join a value-sorted backlog; when the serviced packet completes,
//! the most valuable backlog packet enters service.

use crate::{Slot, Value, Work};

/// A packet in service: its value, remaining cycles, and arrival slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InService {
    /// Intrinsic value.
    pub value: Value,
    /// Remaining processing cycles (always >= 1).
    pub residual: u32,
    /// Arrival slot.
    pub arrived: Slot,
}

/// One output queue of a [`crate::CombinedSwitch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedQueue {
    work: Work,
    in_service: Option<InService>,
    /// Backlog sorted by value, descending; ties keep arrival order.
    backlog: Vec<(Value, Slot)>,
    /// Cached sum of all resident values (service + backlog).
    value_sum: u64,
}

impl CombinedQueue {
    /// Creates an empty queue whose packets all require `work` cycles.
    pub fn new(work: Work) -> Self {
        CombinedQueue {
            work,
            in_service: None,
            backlog: Vec::new(),
            value_sum: 0,
        }
    }

    /// The fixed per-packet requirement of this queue.
    pub fn work(&self) -> Work {
        self.work
    }

    /// Number of resident packets (service + backlog).
    pub fn len(&self) -> usize {
        self.backlog.len() + usize::from(self.in_service.is_some())
    }

    /// True when no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.in_service.is_none() && self.backlog.is_empty()
    }

    /// The packet currently in service, if any.
    pub fn in_service(&self) -> Option<&InService> {
        self.in_service.as_ref()
    }

    /// Total outstanding work: the serviced packet's residual plus the full
    /// requirement of every backlog packet.
    pub fn total_work(&self) -> u64 {
        self.in_service.map_or(0, |s| s.residual as u64)
            + self.backlog.len() as u64 * self.work.as_u64()
    }

    /// Sum of resident values.
    pub fn total_value(&self) -> u64 {
        self.value_sum
    }

    /// Average resident value, `None` when empty.
    pub fn average_value(&self) -> Option<f64> {
        let n = self.len();
        (n > 0).then(|| self.value_sum as f64 / n as f64)
    }

    /// Smallest resident value (the push-out victim's value).
    pub fn min_value(&self) -> Option<Value> {
        let backlog_min = self.backlog.last().map(|&(v, _)| v);
        let service = self.in_service.map(|s| s.value);
        match (backlog_min, service) {
            (Some(b), Some(s)) => Some(b.min(s)),
            (b, s) => b.or(s),
        }
    }

    /// Inserts a packet of value `value` arriving at `slot`. If the queue
    /// was idle the packet enters service immediately.
    pub fn insert(&mut self, value: Value, slot: Slot) {
        self.value_sum += value.get();
        if self.in_service.is_none() && self.backlog.is_empty() {
            self.in_service = Some(InService {
                value,
                residual: self.work.cycles(),
                arrived: slot,
            });
            return;
        }
        let pos = self.backlog.partition_point(|&(v, _)| v >= value);
        self.backlog.insert(pos, (value, slot));
    }

    /// Evicts the lowest-value packet: the backlog minimum, or the serviced
    /// packet when the backlog is empty (its partial work is lost). Returns
    /// the evicted value.
    pub fn evict_min(&mut self) -> Option<Value> {
        if let Some((v, _)) = self.backlog.pop() {
            self.value_sum -= v.get();
            return Some(v);
        }
        let s = self.in_service.take()?;
        self.value_sum -= s.value.get();
        Some(s.value)
    }

    /// Applies up to `cycles` to the serviced packet (promoting from the
    /// backlog as packets complete). Completed packets' `(value, latency
    /// source slot)` pairs are appended to `completions`. Returns cycles
    /// actually used.
    pub fn process(&mut self, cycles: u32, completions: &mut Vec<(Value, Slot)>) -> u32 {
        let mut budget = cycles;
        while budget > 0 {
            let Some(current) = self.in_service.as_mut() else {
                // Promote the most valuable backlog packet.
                let Some((value, arrived)) = take_first(&mut self.backlog) else {
                    break;
                };
                self.in_service = Some(InService {
                    value,
                    residual: self.work.cycles(),
                    arrived,
                });
                continue;
            };
            let step = budget.min(current.residual);
            current.residual -= step;
            budget -= step;
            if current.residual == 0 {
                let done = self.in_service.take().expect("current exists");
                self.value_sum -= done.value.get();
                completions.push((done.value, done.arrived));
            }
        }
        cycles - budget
    }

    /// Removes every resident packet, returning how many were discarded.
    pub fn clear(&mut self) -> u64 {
        let n = self.len() as u64;
        self.in_service = None;
        self.backlog.clear();
        self.value_sum = 0;
        n
    }

    /// Checks internal invariants: descending backlog and a correct sum.
    pub fn invariants_hold(&self) -> bool {
        let sorted = self.backlog.windows(2).all(|w| w[0].0 >= w[1].0);
        let sum: u64 = self.backlog.iter().map(|&(v, _)| v.get()).sum::<u64>()
            + self.in_service.map_or(0, |s| s.value.get());
        let service_ok = self
            .in_service
            .is_none_or(|s| s.residual >= 1 && s.residual <= self.work.cycles());
        sorted && sum == self.value_sum && service_ok
    }
}

fn take_first(backlog: &mut Vec<(Value, Slot)>) -> Option<(Value, Slot)> {
    if backlog.is_empty() {
        None
    } else {
        Some(backlog.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(w: u32) -> CombinedQueue {
        CombinedQueue::new(Work::new(w))
    }

    #[test]
    fn first_insert_enters_service() {
        let mut q = q(3);
        q.insert(Value::new(5), Slot::ZERO);
        assert_eq!(q.len(), 1);
        assert_eq!(q.in_service().unwrap().residual, 3);
        assert_eq!(q.total_work(), 3);
        assert!(q.invariants_hold());
    }

    #[test]
    fn backlog_sorted_desc_and_totals_track() {
        let mut q = q(2);
        for v in [4, 9, 1] {
            q.insert(Value::new(v), Slot::ZERO);
        }
        // 4 is in service; backlog = [9, 1].
        assert_eq!(q.in_service().unwrap().value, Value::new(4));
        assert_eq!(q.total_value(), 14);
        assert_eq!(q.total_work(), 2 + 2 * 2);
        assert_eq!(q.min_value(), Some(Value::new(1)));
        assert!(q.invariants_hold());
    }

    #[test]
    fn service_is_not_preempted_but_promotion_is_by_value() {
        let mut q = q(2);
        q.insert(Value::new(1), Slot::ZERO); // enters service
        q.insert(Value::new(9), Slot::ZERO);
        q.insert(Value::new(5), Slot::ZERO);
        let mut done = Vec::new();
        // Two cycles: the 1 completes (run-to-completion, no preemption).
        assert_eq!(q.process(2, &mut done), 2);
        assert_eq!(done, vec![(Value::new(1), Slot::ZERO)]);
        // The 9 is promoted at the next processing opportunity, not the 5.
        assert_eq!(q.process(1, &mut done), 1);
        let s = q.in_service().unwrap();
        assert_eq!(s.value, Value::new(9));
        assert_eq!(s.residual, 1);
        assert!(q.invariants_hold());
    }

    #[test]
    fn process_spans_multiple_packets_with_speedup() {
        let mut q = q(1);
        for v in [3, 2, 1] {
            q.insert(Value::new(v), Slot::ZERO);
        }
        let mut done = Vec::new();
        assert_eq!(q.process(2, &mut done), 2);
        let values: Vec<u64> = done.iter().map(|&(v, _)| v.get()).collect();
        assert_eq!(values, vec![3, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn evict_prefers_backlog_minimum() {
        let mut q = q(4);
        q.insert(Value::new(2), Slot::ZERO); // in service
        q.insert(Value::new(7), Slot::ZERO);
        q.insert(Value::new(3), Slot::ZERO);
        assert_eq!(q.evict_min(), Some(Value::new(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.in_service().unwrap().value, Value::new(2));
        assert!(q.invariants_hold());
    }

    #[test]
    fn evict_falls_back_to_service() {
        let mut q = q(4);
        q.insert(Value::new(2), Slot::ZERO);
        let mut done = Vec::new();
        q.process(1, &mut done); // partial work
        assert_eq!(q.evict_min(), Some(Value::new(2)));
        assert!(q.is_empty());
        assert_eq!(q.total_value(), 0);
        assert!(q.invariants_hold());
    }

    #[test]
    fn min_value_considers_service_packet() {
        let mut q = q(2);
        q.insert(Value::new(1), Slot::ZERO); // service
        q.insert(Value::new(5), Slot::ZERO); // backlog
        assert_eq!(q.min_value(), Some(Value::new(1)));
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = q(2);
        q.insert(Value::new(5), Slot::ZERO);
        q.insert(Value::new(3), Slot::ZERO);
        assert_eq!(q.clear(), 2);
        assert!(q.is_empty());
        assert_eq!(q.total_work(), 0);
        assert!(q.invariants_hold());
    }

    #[test]
    fn idle_queue_uses_no_cycles() {
        let mut q = q(2);
        let mut done = Vec::new();
        assert_eq!(q.process(5, &mut done), 0);
        assert!(done.is_empty());
    }
}
