//! The shared-memory switch state machine for the heterogeneous-value model
//! (Section IV of the paper).

use crate::slab::BufferCore;
use crate::{
    AdmitError, ConservationError, Counters, DirtyPorts, PortId, Slot, Transmitted, Value,
    ValuePacket, ValueQueue, ValueSwitchConfig,
};

use super::queue::ValueEntry;

/// Outcome summary of one transmission phase in the value model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValuePhaseReport {
    /// Packets transmitted during the phase.
    pub transmitted: u64,
    /// Total value carried out (the model's objective).
    pub value: u64,
}

/// An `l × n` shared-memory switch with buffer capacity `B` whose unit-work
/// packets carry heterogeneous values; each output queue is a priority queue
/// transmitting its most valuable packet first. The buffer is a
/// [`BufferCore`] slab of exactly `B` slots shared by every queue.
///
/// ```
/// use smbm_switch::{PortId, Value, ValuePacket, ValueSwitch, ValueSwitchConfig};
///
/// let mut sw = ValueSwitch::new(ValueSwitchConfig::new(4, 2)?);
/// sw.admit(ValuePacket::new(PortId::new(0), Value::new(6)))?;
/// sw.admit(ValuePacket::new(PortId::new(0), Value::new(2)))?;
/// let report = sw.transmit(1);
/// assert_eq!(report.value, 6); // the $6 packet leaves first
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ValueSwitch {
    config: ValueSwitchConfig,
    queues: Vec<ValueQueue>,
    core: BufferCore,
    counters: Counters,
    now: Slot,
    transmitted_per_port: Vec<u64>,
    dirty: DirtyPorts,
}

impl ValueSwitch {
    /// Creates an empty switch from a validated configuration.
    pub fn new(config: ValueSwitchConfig) -> Self {
        ValueSwitch {
            queues: (0..config.ports()).map(|_| ValueQueue::new()).collect(),
            transmitted_per_port: vec![0; config.ports()],
            dirty: DirtyPorts::new(config.ports()),
            core: BufferCore::new(config.buffer()),
            config,
            counters: Counters::new(),
            now: Slot::ZERO,
        }
    }

    /// The switch configuration.
    pub fn config(&self) -> &ValueSwitchConfig {
        &self.config
    }

    /// Number of output ports `n`.
    pub fn ports(&self) -> usize {
        self.config.ports()
    }

    /// Shared buffer capacity `B`.
    pub fn buffer(&self) -> usize {
        self.config.buffer()
    }

    /// The shared slab of packet slots backing every queue.
    pub fn core(&self) -> &BufferCore {
        &self.core
    }

    /// Packets currently resident across all queues.
    pub fn occupancy(&self) -> usize {
        self.core.allocated()
    }

    /// Free buffer slots.
    pub fn free_space(&self) -> usize {
        self.core.free_slots()
    }

    /// True when the buffer holds `B` packets.
    pub fn is_full(&self) -> bool {
        self.core.free_slots() == 0
    }

    /// The current time slot.
    pub fn now(&self) -> Slot {
        self.now
    }

    /// Read access to an output queue.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn queue(&self, port: PortId) -> &ValueQueue {
        &self.queues[port.index()]
    }

    /// Iterates over `(port, queue)` pairs.
    pub fn queues(&self) -> impl Iterator<Item = (PortId, &ValueQueue)> {
        self.queues
            .iter()
            .enumerate()
            .map(|(i, q)| (PortId::new(i), q))
    }

    /// Length of the longest output queue right now — the telemetry plane's
    /// queue-depth gauge tap.
    pub fn max_queue_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).max().unwrap_or(0)
    }

    /// Lifetime packet accounting.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Moves the ports whose queues changed since the last drain into `out`
    /// (cleared first); see [`crate::DirtyPorts`].
    pub fn drain_dirty_into(&mut self, out: &mut Vec<PortId>) {
        self.dirty.drain_into(out);
    }

    fn validate(&self, pkt: ValuePacket) -> Result<(), AdmitError> {
        if pkt.port().index() >= self.queues.len() {
            return Err(AdmitError::UnknownPort {
                port: pkt.port(),
                ports: self.queues.len(),
            });
        }
        Ok(())
    }

    /// Admits `pkt` into its destination priority queue.
    ///
    /// # Errors
    ///
    /// Fails with [`AdmitError::BufferFull`] when no space is free, or with
    /// [`AdmitError::UnknownPort`] for an out-of-range port.
    pub fn admit(&mut self, pkt: ValuePacket) -> Result<(), AdmitError> {
        self.validate(pkt)?;
        if self.is_full() {
            return Err(AdmitError::BufferFull);
        }
        self.counters.record_arrival(pkt.value().get());
        self.counters.record_admission(pkt.value().get());
        self.queues[pkt.port().index()].insert(&mut self.core, pkt.value(), self.now);
        self.dirty.mark(pkt.port().index());
        Ok(())
    }

    /// Rejects `pkt` on arrival.
    ///
    /// # Errors
    ///
    /// Fails with [`AdmitError::UnknownPort`] for an out-of-range port.
    pub fn reject(&mut self, pkt: ValuePacket) -> Result<(), AdmitError> {
        self.validate(pkt)?;
        self.counters.record_arrival(pkt.value().get());
        self.counters.record_drop(pkt.value().get());
        Ok(())
    }

    /// Pushes out the *minimal-value* packet of `victim`'s queue and admits
    /// `pkt` in the freed slot. Returns the evicted value.
    ///
    /// When `victim == pkt.port()` this realises the uniform "virtual add"
    /// semantics documented in DESIGN.md: the arriving packet enters and the
    /// queue's minimum leaves, which may be the arriving packet itself. The
    /// pre-slab implementation inserted first and then popped the minimum;
    /// with a slab of exactly `B` slots the eviction happens first, with the
    /// self-eviction case (`pkt.value() <= the queue's resident minimum`,
    /// where the newcomer — placed after equal values — *is* the popped
    /// minimum) short-circuited to a net drop. The outcomes are identical.
    ///
    /// # Errors
    ///
    /// Fails if the victim queue is empty (and `victim != pkt.port()`), or on
    /// an unknown port.
    pub fn push_out_and_admit(
        &mut self,
        victim: PortId,
        pkt: ValuePacket,
    ) -> Result<Value, AdmitError> {
        self.validate(pkt)?;
        if victim.index() >= self.queues.len() {
            return Err(AdmitError::UnknownPort {
                port: victim,
                ports: self.queues.len(),
            });
        }
        if victim != pkt.port() && self.queues[victim.index()].is_empty() {
            return Err(AdmitError::EmptyQueue { port: victim });
        }
        self.counters.record_arrival(pkt.value().get());
        self.counters.record_admission(pkt.value().get());
        let own = &self.queues[pkt.port().index()];
        let evicted =
            if victim == pkt.port() && own.min_value().is_none_or(|min| pkt.value() <= min) {
                // The arrival would sort behind every resident packet of its own
                // queue and immediately be popped as the minimum: a net drop.
                pkt.value()
            } else {
                let out = self.queues[victim.index()]
                    .pop_min(&mut self.core)
                    .expect("victim queue non-empty")
                    .value;
                self.queues[pkt.port().index()].insert(&mut self.core, pkt.value(), self.now);
                out
            };
        self.counters.record_push_out(evicted.get());
        self.dirty.mark(victim.index());
        self.dirty.mark(pkt.port().index());
        Ok(evicted)
    }

    /// Runs the transmission phase: every non-empty queue transmits up to
    /// `speedup` of its most valuable packets.
    ///
    /// Completed packets are appended to `out` with latency information.
    pub fn transmit_into(&mut self, speedup: u32, out: &mut Vec<Transmitted>) -> ValuePhaseReport {
        let mut report = ValuePhaseReport::default();
        for (i, queue) in self.queues.iter_mut().enumerate() {
            for c in 0..speedup {
                let Some(ValueEntry { value, arrived }) = queue.pop_max(&mut self.core) else {
                    break;
                };
                if c == 0 {
                    self.dirty.mark(i);
                }
                let t = Transmitted {
                    port: PortId::new(i),
                    value,
                    arrived,
                    departed: self.now,
                };
                self.counters.record_transmission(value.get(), t.latency());
                self.counters.record_cycles(1);
                self.transmitted_per_port[i] += 1;
                report.transmitted += 1;
                report.value += value.get();
                out.push(t);
            }
        }
        report
    }

    /// Like [`ValueSwitch::transmit_into`], discarding per-packet details.
    pub fn transmit(&mut self, speedup: u32) -> ValuePhaseReport {
        let mut scratch = Vec::new();
        self.transmit_into(speedup, &mut scratch)
    }

    /// Advances to the next time slot.
    pub fn advance_slot(&mut self) {
        self.now = self.now.next();
    }

    /// Discards every resident packet (a "flushout"), returning how many were
    /// discarded.
    pub fn flush(&mut self) -> u64 {
        let flushed_value = self.total_value();
        let mut total = 0;
        for q in &mut self.queues {
            total += q.clear(&mut self.core);
        }
        self.dirty.mark_all();
        self.counters.record_flush(total, flushed_value);
        total
    }

    /// Smallest value currently admitted anywhere in the buffer, with the
    /// port holding it. Ties are broken toward the *longest* queue, matching
    /// MVD's victim rule.
    pub fn global_min_value(&self) -> Option<(PortId, Value)> {
        let mut best: Option<(PortId, Value, usize)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            let Some(v) = q.min_value() else { continue };
            let better = match best {
                None => true,
                Some((_, bv, blen)) => v < bv || (v == bv && q.len() > blen),
            };
            if better {
                best = Some((PortId::new(i), v, q.len()));
            }
        }
        best.map(|(p, v, _)| (p, v))
    }

    /// Packets transmitted per output port since construction.
    pub fn transmitted_per_port(&self) -> &[u64] {
        &self.transmitted_per_port
    }

    /// Total value resident in the buffer.
    pub fn total_value(&self) -> u64 {
        self.queues.iter().map(ValueQueue::total_value).sum()
    }

    /// Verifies structural and conservation invariants; test/debug oracle.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let sum: usize = self.queues.iter().map(ValueQueue::len).sum();
        if sum != self.core.allocated() {
            return Err(format!(
                "slab allocation {} != sum of queue lengths {}",
                self.core.allocated(),
                sum
            ));
        }
        if self.core.capacity() != self.config.buffer() {
            return Err(format!(
                "slab capacity {} != configured buffer {}",
                self.core.capacity(),
                self.config.buffer()
            ));
        }
        self.core.check_accounting()?;
        for (i, q) in self.queues.iter().enumerate() {
            if !q.invariants_hold(&self.core) {
                return Err(format!("queue {} order/sum invariant violated", i));
            }
        }
        self.counters
            .check_conservation(self.occupancy())
            .map_err(|e: ConservationError| e.to_string())?;
        self.counters
            .check_value_conservation(self.total_value())
            .map_err(|e: ConservationError| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch(b: usize, n: usize) -> ValueSwitch {
        ValueSwitch::new(ValueSwitchConfig::new(b, n).unwrap())
    }

    fn pkt(port: usize, value: u64) -> ValuePacket {
        ValuePacket::new(PortId::new(port), Value::new(value))
    }

    #[test]
    fn admit_until_full() {
        let mut sw = switch(2, 2);
        sw.admit(pkt(0, 1)).unwrap();
        sw.admit(pkt(1, 2)).unwrap();
        assert!(sw.is_full());
        assert_eq!(sw.admit(pkt(0, 3)), Err(AdmitError::BufferFull));
        sw.check_invariants().unwrap();
    }

    #[test]
    fn admit_validates_port() {
        let mut sw = switch(2, 2);
        assert!(matches!(
            sw.admit(pkt(5, 1)),
            Err(AdmitError::UnknownPort { .. })
        ));
        assert_eq!(sw.counters().arrived(), 0);
    }

    #[test]
    fn transmit_takes_most_valuable_first() {
        let mut sw = switch(4, 1);
        for v in [2, 6, 4] {
            sw.admit(pkt(0, v)).unwrap();
        }
        assert_eq!(sw.transmit(1).value, 6);
        assert_eq!(sw.transmit(1).value, 4);
        assert_eq!(sw.transmit(1).value, 2);
        assert_eq!(sw.transmit(1).value, 0);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn transmit_speedup_takes_top_c() {
        let mut sw = switch(8, 2);
        for v in [1, 2, 3, 4] {
            sw.admit(pkt(0, v)).unwrap();
        }
        sw.admit(pkt(1, 9)).unwrap();
        let r = sw.transmit(2);
        // Port 0 sends 4 and 3; port 1 sends 9.
        assert_eq!(r.transmitted, 3);
        assert_eq!(r.value, 16);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn push_out_evicts_minimum_of_victim() {
        let mut sw = switch(2, 2);
        sw.admit(pkt(1, 5)).unwrap();
        sw.admit(pkt(1, 3)).unwrap();
        let evicted = sw.push_out_and_admit(PortId::new(1), pkt(0, 7)).unwrap();
        assert_eq!(evicted, Value::new(3));
        assert_eq!(sw.queue(PortId::new(1)).max_value(), Some(Value::new(5)));
        assert_eq!(sw.queue(PortId::new(0)).len(), 1);
        assert!(sw.is_full());
        sw.check_invariants().unwrap();
    }

    #[test]
    fn virtual_add_self_eviction() {
        // Victim queue == destination queue; the arriving packet is smaller
        // than everything resident, so it evicts itself (a net drop that is
        // accounted as admit + push-out).
        let mut sw = switch(2, 1);
        sw.admit(pkt(0, 5)).unwrap();
        sw.admit(pkt(0, 4)).unwrap();
        let evicted = sw.push_out_and_admit(PortId::new(0), pkt(0, 1)).unwrap();
        assert_eq!(evicted, Value::new(1));
        assert_eq!(sw.total_value(), 9);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn virtual_add_equal_minimum_drops_the_arrival() {
        // Equal values keep arrival order: the newcomer sorts behind the
        // resident equal minimum, so it is the one evicted.
        let mut sw = switch(2, 1);
        sw.admit(pkt(0, 5)).unwrap();
        sw.admit(pkt(0, 4)).unwrap();
        let evicted = sw.push_out_and_admit(PortId::new(0), pkt(0, 4)).unwrap();
        assert_eq!(evicted, Value::new(4));
        assert_eq!(sw.total_value(), 9);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn virtual_add_displaces_resident_minimum() {
        let mut sw = switch(2, 1);
        sw.admit(pkt(0, 5)).unwrap();
        sw.admit(pkt(0, 4)).unwrap();
        let evicted = sw.push_out_and_admit(PortId::new(0), pkt(0, 6)).unwrap();
        assert_eq!(evicted, Value::new(4));
        assert_eq!(sw.total_value(), 11);
        sw.check_invariants().unwrap();
    }

    #[test]
    fn push_out_from_empty_other_queue_fails() {
        let mut sw = switch(2, 2);
        sw.admit(pkt(0, 1)).unwrap();
        sw.admit(pkt(0, 2)).unwrap();
        let err = sw.push_out_and_admit(PortId::new(1), pkt(0, 3));
        assert_eq!(
            err,
            Err(AdmitError::EmptyQueue {
                port: PortId::new(1)
            })
        );
    }

    #[test]
    fn global_min_value_prefers_longer_queue_on_tie() {
        let mut sw = switch(8, 3);
        sw.admit(pkt(0, 2)).unwrap();
        sw.admit(pkt(1, 2)).unwrap();
        sw.admit(pkt(1, 5)).unwrap();
        // Both port 0 and port 1 hold a min of 2; port 1 is longer.
        assert_eq!(sw.global_min_value(), Some((PortId::new(1), Value::new(2))));
    }

    #[test]
    fn global_min_value_none_when_empty() {
        let sw = switch(2, 2);
        assert_eq!(sw.global_min_value(), None);
    }

    #[test]
    fn flush_and_conservation() {
        let mut sw = switch(4, 2);
        for v in [1, 2, 3] {
            sw.admit(pkt(0, v)).unwrap();
        }
        sw.reject(pkt(1, 9)).unwrap();
        sw.transmit(1);
        assert_eq!(sw.flush(), 2);
        sw.check_invariants().unwrap();
        assert_eq!(sw.counters().transmitted_value(), 3);
        assert_eq!(sw.counters().arrived_value(), 15);
    }

    #[test]
    fn latency_recorded_on_transmit() {
        let mut sw = switch(2, 1);
        sw.admit(pkt(0, 4)).unwrap();
        sw.advance_slot();
        sw.advance_slot();
        sw.advance_slot();
        let mut out = Vec::new();
        sw.transmit_into(1, &mut out);
        assert_eq!(out[0].latency(), 3);
    }
}
