//! A single priority output queue in the heterogeneous-value model.

use crate::{Slot, Value};

/// One resident packet of a [`ValueQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueEntry {
    /// Intrinsic value of the packet.
    pub value: Value,
    /// Slot during which the packet arrived.
    pub arrived: Slot,
}

/// One output queue of a [`crate::ValueSwitch`].
///
/// Section IV fixes the *most favourable* processing order per queue: a
/// priority queue where the most valuable packets are transmitted first. We
/// keep entries sorted by value, descending; the transmission phase pops from
/// the front, push-out policies evict from the back (the minimal value).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValueQueue {
    /// Entries in non-increasing value order.
    entries: Vec<ValueEntry>,
    /// Cached sum of resident values.
    sum: u64,
}

impl ValueQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident packets `|Q_i|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of resident values.
    pub fn total_value(&self) -> u64 {
        self.sum
    }

    /// Average resident value `a_i`, the quantity in MRD's ratio
    /// `|Q_i| / a_i`. Returns `None` for an empty queue.
    pub fn average_value(&self) -> Option<f64> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.sum as f64 / self.entries.len() as f64)
        }
    }

    /// MRD's selection key `|Q_i| / a_i = |Q_i|^2 / sum`, computed without
    /// intermediate division so ties compare exactly. Returns `None` for an
    /// empty queue.
    pub fn ratio_key(&self) -> Option<RatioKey> {
        if self.entries.is_empty() {
            None
        } else {
            Some(RatioKey {
                len_squared: (self.entries.len() as u128) * (self.entries.len() as u128),
                sum: self.sum as u128,
            })
        }
    }

    /// Largest resident value (head of the priority queue).
    pub fn max_value(&self) -> Option<Value> {
        self.entries.first().map(|e| e.value)
    }

    /// Smallest resident value (push-out victim position).
    pub fn min_value(&self) -> Option<Value> {
        self.entries.last().map(|e| e.value)
    }

    /// Inserts a packet of value `value` that arrived during `slot`,
    /// maintaining descending order. Among equal values the newcomer goes
    /// last, so the earlier arrival transmits first.
    pub fn insert(&mut self, value: Value, slot: Slot) {
        // Find the first index whose value is strictly smaller: insert there.
        let pos = self.entries.partition_point(|e| e.value >= value);
        self.entries.insert(
            pos,
            ValueEntry {
                value,
                arrived: slot,
            },
        );
        self.sum += value.get();
    }

    /// Removes and returns the most valuable packet (transmission).
    pub fn pop_max(&mut self) -> Option<ValueEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let e = self.entries.remove(0);
        self.sum -= e.value.get();
        Some(e)
    }

    /// Removes and returns the least valuable packet (push-out).
    pub fn pop_min(&mut self) -> Option<ValueEntry> {
        let e = self.entries.pop()?;
        self.sum -= e.value.get();
        Some(e)
    }

    /// Removes every resident packet, returning how many were discarded.
    pub fn clear(&mut self) -> u64 {
        let n = self.entries.len() as u64;
        self.entries.clear();
        self.sum = 0;
        n
    }

    /// Resident entries in transmission (descending-value) order.
    pub fn entries(&self) -> &[ValueEntry] {
        &self.entries
    }

    /// Checks internal invariants: descending order and a correct cached sum.
    pub fn invariants_hold(&self) -> bool {
        let sorted = self.entries.windows(2).all(|w| w[0].value >= w[1].value);
        let sum: u64 = self.entries.iter().map(|e| e.value.get()).sum();
        sorted && sum == self.sum
    }
}

/// Exact comparison key for MRD's ratio `|Q|^2 / sum`, avoiding floating
/// point: `a/b > c/d  <=>  a*d > c*b` for positive denominators. Equality is
/// equality *of the ratio* (`4/2 == 2/1`), consistent with the ordering.
#[derive(Debug, Clone, Copy)]
pub struct RatioKey {
    len_squared: u128,
    sum: u128,
}

impl RatioKey {
    /// The ratio as a float, for reporting.
    pub fn as_f64(&self) -> f64 {
        self.len_squared as f64 / self.sum as f64
    }
}

impl PartialEq for RatioKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for RatioKey {}

impl PartialOrd for RatioKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RatioKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.len_squared * other.sum).cmp(&(other.len_squared * self.sum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> Value {
        Value::new(x)
    }

    #[test]
    fn insert_keeps_descending_order() {
        let mut q = ValueQueue::new();
        for x in [3, 1, 6, 2, 6] {
            q.insert(v(x), Slot::ZERO);
        }
        let values: Vec<u64> = q.entries().iter().map(|e| e.value.get()).collect();
        assert_eq!(values, vec![6, 6, 3, 2, 1]);
        assert!(q.invariants_hold());
    }

    #[test]
    fn equal_values_preserve_arrival_order() {
        let mut q = ValueQueue::new();
        q.insert(v(5), Slot::new(1));
        q.insert(v(5), Slot::new(2));
        let first = q.pop_max().unwrap();
        assert_eq!(first.arrived, Slot::new(1));
    }

    #[test]
    fn sum_and_average_track_contents() {
        let mut q = ValueQueue::new();
        assert_eq!(q.average_value(), None);
        q.insert(v(2), Slot::ZERO);
        q.insert(v(4), Slot::ZERO);
        assert_eq!(q.total_value(), 6);
        assert_eq!(q.average_value(), Some(3.0));
        q.pop_min();
        assert_eq!(q.total_value(), 4);
        assert!(q.invariants_hold());
    }

    #[test]
    fn pop_max_and_min_are_extremes() {
        let mut q = ValueQueue::new();
        for x in [3, 9, 1] {
            q.insert(v(x), Slot::ZERO);
        }
        assert_eq!(q.pop_max().unwrap().value, v(9));
        assert_eq!(q.pop_min().unwrap().value, v(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.max_value(), Some(v(3)));
        assert_eq!(q.min_value(), Some(v(3)));
    }

    #[test]
    fn pops_on_empty_return_none() {
        let mut q = ValueQueue::new();
        assert_eq!(q.pop_max(), None);
        assert_eq!(q.pop_min(), None);
        assert_eq!(q.max_value(), None);
        assert_eq!(q.min_value(), None);
    }

    #[test]
    fn clear_resets_sum() {
        let mut q = ValueQueue::new();
        q.insert(v(7), Slot::ZERO);
        q.insert(v(2), Slot::ZERO);
        assert_eq!(q.clear(), 2);
        assert_eq!(q.total_value(), 0);
        assert!(q.invariants_hold());
    }

    #[test]
    fn ratio_key_matches_float_ratio() {
        let mut q = ValueQueue::new();
        q.insert(v(2), Slot::ZERO);
        q.insert(v(4), Slot::ZERO);
        let key = q.ratio_key().unwrap();
        // |Q| / a = 2 / 3 = |Q|^2 / sum = 4 / 6.
        assert!((key.as_f64() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_key_ordering_is_exact() {
        let mut a = ValueQueue::new();
        a.insert(v(1), Slot::ZERO);
        a.insert(v(1), Slot::ZERO); // ratio 4/2 = 2
        let mut b = ValueQueue::new();
        b.insert(v(3), Slot::ZERO); // ratio 1/3
        assert!(a.ratio_key().unwrap() > b.ratio_key().unwrap());

        let mut c = ValueQueue::new();
        c.insert(v(2), Slot::ZERO);
        c.insert(v(6), Slot::ZERO); // ratio 4/8 = 1/2
        let mut d = ValueQueue::new();
        d.insert(v(8), Slot::ZERO); // ratio 1/8
        assert!(c.ratio_key().unwrap() > d.ratio_key().unwrap());
        assert_eq!(c.ratio_key().unwrap(), c.ratio_key().unwrap());
    }

    #[test]
    fn empty_queue_has_no_ratio_key() {
        assert_eq!(ValueQueue::new().ratio_key(), None);
    }
}
