//! A single priority output queue in the heterogeneous-value model.

use crate::slab::{BufferCore, SlotList};
use crate::{Slot, Value};

/// One resident packet of a [`ValueQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueEntry {
    /// Intrinsic value of the packet.
    pub value: Value,
    /// Slot during which the packet arrived.
    pub arrived: Slot,
}

/// One output queue of a [`crate::ValueSwitch`].
///
/// Section IV fixes the *most favourable* processing order per queue: a
/// priority queue where the most valuable packets are transmitted first. The
/// queue is a value-descending [`SlotList`] view over the switch's shared
/// [`BufferCore`] slab: the transmission phase pops from the front in O(1)
/// (previously an O(len) `Vec::remove(0)` memmove), push-out policies evict
/// from the back (the minimal value) in O(1). The policy-facing read API
/// (`len`, `total_value`, `min_value`, `max_value`, `ratio_key`) works off
/// inline cached aggregates and needs no core access.
#[derive(Debug, Clone, Default)]
pub struct ValueQueue {
    /// Entries in non-increasing value order.
    list: SlotList,
    /// Cached sum of resident values.
    sum: u64,
    /// Cached largest resident value (front of the list).
    max: Option<Value>,
    /// Cached smallest resident value (back of the list).
    min: Option<Value>,
}

impl ValueQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident packets `|Q_i|`.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Sum of resident values.
    pub fn total_value(&self) -> u64 {
        self.sum
    }

    /// Average resident value `a_i`, the quantity in MRD's ratio
    /// `|Q_i| / a_i`. Returns `None` for an empty queue.
    pub fn average_value(&self) -> Option<f64> {
        if self.list.is_empty() {
            None
        } else {
            Some(self.sum as f64 / self.list.len() as f64)
        }
    }

    /// MRD's selection key `|Q_i| / a_i = |Q_i|^2 / sum`, computed without
    /// intermediate division so ties compare exactly. Returns `None` for an
    /// empty queue.
    pub fn ratio_key(&self) -> Option<RatioKey> {
        if self.list.is_empty() {
            None
        } else {
            Some(RatioKey {
                len_squared: (self.list.len() as u128) * (self.list.len() as u128),
                sum: self.sum as u128,
            })
        }
    }

    /// Largest resident value (head of the priority queue).
    pub fn max_value(&self) -> Option<Value> {
        self.max
    }

    /// Smallest resident value (push-out victim position).
    pub fn min_value(&self) -> Option<Value> {
        self.min
    }

    /// Inserts a packet of value `value` that arrived during `slot`,
    /// maintaining descending order. Among equal values the newcomer goes
    /// last, so the earlier arrival transmits first.
    pub fn insert(&mut self, core: &mut BufferCore, value: Value, slot: Slot) {
        core.insert_desc(&mut self.list, value, slot);
        self.sum += value.get();
        // An insert can only widen the extremes — no slab reads needed.
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
    }

    /// Removes and returns the most valuable packet (transmission).
    pub fn pop_max(&mut self, core: &mut BufferCore) -> Option<ValueEntry> {
        let (value, arrived) = core.pop_front(&mut self.list)?;
        self.sum -= value.get();
        // Popping the front only invalidates the max cache.
        self.max = core.front(&self.list).map(|(v, _)| v);
        if self.list.is_empty() {
            self.min = None;
        }
        Some(ValueEntry { value, arrived })
    }

    /// Removes and returns the least valuable packet (push-out).
    pub fn pop_min(&mut self, core: &mut BufferCore) -> Option<ValueEntry> {
        let (value, arrived) = core.pop_back(&mut self.list)?;
        self.sum -= value.get();
        // Popping the back only invalidates the min cache.
        self.min = core.back(&self.list).map(|(v, _)| v);
        if self.list.is_empty() {
            self.max = None;
        }
        Some(ValueEntry { value, arrived })
    }

    /// Removes every resident packet, returning how many were discarded.
    pub fn clear(&mut self, core: &mut BufferCore) -> u64 {
        let n = core.clear(&mut self.list);
        self.sum = 0;
        self.max = None;
        self.min = None;
        n
    }

    /// Resident entries in transmission (descending-value) order.
    pub fn entries<'a>(&self, core: &'a BufferCore) -> impl Iterator<Item = ValueEntry> + 'a {
        core.iter(&self.list)
            .map(|(value, arrived)| ValueEntry { value, arrived })
    }

    /// Checks internal invariants: descending order, a correct cached sum,
    /// and extreme caches matching the list ends.
    pub fn invariants_hold(&self, core: &BufferCore) -> bool {
        let sorted = core.is_sorted_desc(&self.list);
        let sum: u64 = core.iter(&self.list).map(|(v, _)| v.get()).sum();
        let extremes = self.max == core.front(&self.list).map(|(v, _)| v)
            && self.min == core.back(&self.list).map(|(v, _)| v);
        sorted && sum == self.sum && extremes
    }
}

/// Exact comparison key for MRD's ratio `|Q|^2 / sum`, avoiding floating
/// point: `a/b > c/d  <=>  a*d > c*b` for positive denominators. Equality is
/// equality *of the ratio* (`4/2 == 2/1`), consistent with the ordering.
#[derive(Debug, Clone, Copy)]
pub struct RatioKey {
    len_squared: u128,
    sum: u128,
}

impl RatioKey {
    /// Builds the key from a raw numerator (`|Q|^2`) and denominator (value
    /// sum), e.g. for the virtual-add key of a queue plus an arrival.
    pub fn new(len_squared: u128, sum: u128) -> Self {
        RatioKey { len_squared, sum }
    }

    /// The ratio as a float, for reporting.
    pub fn as_f64(&self) -> f64 {
        self.len_squared as f64 / self.sum as f64
    }
}

impl PartialEq for RatioKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for RatioKey {}

impl PartialOrd for RatioKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RatioKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.len_squared * other.sum).cmp(&(other.len_squared * self.sum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> Value {
        Value::new(x)
    }

    fn setup() -> (BufferCore, ValueQueue) {
        (BufferCore::new(32), ValueQueue::new())
    }

    #[test]
    fn insert_keeps_descending_order() {
        let (mut core, mut q) = setup();
        for x in [3, 1, 6, 2, 6] {
            q.insert(&mut core, v(x), Slot::ZERO);
        }
        let values: Vec<u64> = q.entries(&core).map(|e| e.value.get()).collect();
        assert_eq!(values, vec![6, 6, 3, 2, 1]);
        assert!(q.invariants_hold(&core));
    }

    #[test]
    fn equal_values_preserve_arrival_order() {
        let (mut core, mut q) = setup();
        q.insert(&mut core, v(5), Slot::new(1));
        q.insert(&mut core, v(5), Slot::new(2));
        let first = q.pop_max(&mut core).unwrap();
        assert_eq!(first.arrived, Slot::new(1));
    }

    #[test]
    fn sum_and_average_track_contents() {
        let (mut core, mut q) = setup();
        assert_eq!(q.average_value(), None);
        q.insert(&mut core, v(2), Slot::ZERO);
        q.insert(&mut core, v(4), Slot::ZERO);
        assert_eq!(q.total_value(), 6);
        assert_eq!(q.average_value(), Some(3.0));
        q.pop_min(&mut core);
        assert_eq!(q.total_value(), 4);
        assert!(q.invariants_hold(&core));
    }

    #[test]
    fn pop_max_and_min_are_extremes() {
        let (mut core, mut q) = setup();
        for x in [3, 9, 1] {
            q.insert(&mut core, v(x), Slot::ZERO);
        }
        assert_eq!(q.pop_max(&mut core).unwrap().value, v(9));
        assert_eq!(q.pop_min(&mut core).unwrap().value, v(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.max_value(), Some(v(3)));
        assert_eq!(q.min_value(), Some(v(3)));
    }

    #[test]
    fn pops_on_empty_return_none() {
        let (mut core, mut q) = setup();
        assert_eq!(q.pop_max(&mut core), None);
        assert_eq!(q.pop_min(&mut core), None);
        assert_eq!(q.max_value(), None);
        assert_eq!(q.min_value(), None);
    }

    #[test]
    fn clear_resets_sum() {
        let (mut core, mut q) = setup();
        q.insert(&mut core, v(7), Slot::ZERO);
        q.insert(&mut core, v(2), Slot::ZERO);
        assert_eq!(q.clear(&mut core), 2);
        assert_eq!(q.total_value(), 0);
        assert!(q.invariants_hold(&core));
        core.check_accounting().unwrap();
    }

    #[test]
    fn ratio_key_matches_float_ratio() {
        let (mut core, mut q) = setup();
        q.insert(&mut core, v(2), Slot::ZERO);
        q.insert(&mut core, v(4), Slot::ZERO);
        let key = q.ratio_key().unwrap();
        // |Q| / a = 2 / 3 = |Q|^2 / sum = 4 / 6.
        assert!((key.as_f64() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_key_ordering_is_exact() {
        let (mut core, mut a) = setup();
        a.insert(&mut core, v(1), Slot::ZERO);
        a.insert(&mut core, v(1), Slot::ZERO); // ratio 4/2 = 2
        let mut b = ValueQueue::new();
        b.insert(&mut core, v(3), Slot::ZERO); // ratio 1/3
        assert!(a.ratio_key().unwrap() > b.ratio_key().unwrap());

        let mut c = ValueQueue::new();
        c.insert(&mut core, v(2), Slot::ZERO);
        c.insert(&mut core, v(6), Slot::ZERO); // ratio 4/8 = 1/2
        let mut d = ValueQueue::new();
        d.insert(&mut core, v(8), Slot::ZERO); // ratio 1/8
        assert!(c.ratio_key().unwrap() > d.ratio_key().unwrap());
        assert_eq!(c.ratio_key().unwrap(), c.ratio_key().unwrap());
    }

    #[test]
    fn empty_queue_has_no_ratio_key() {
        assert_eq!(ValueQueue::new().ratio_key(), None);
    }
}
