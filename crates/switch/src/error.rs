//! Error types for switch configuration and buffer operations.

use std::error::Error;
use std::fmt;

use crate::PortId;

/// Errors detected while validating a switch configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The switch must have at least one output port.
    NoPorts,
    /// The shared buffer must hold at least one packet per output port
    /// (the paper assumes `B >= n`).
    BufferTooSmall {
        /// Configured buffer capacity.
        buffer: usize,
        /// Configured number of output ports.
        ports: usize,
    },
    /// A per-port work requirement of zero cycles is meaningless.
    ZeroWork {
        /// The offending port.
        port: PortId,
    },
    /// Speedup (cores per queue) must be at least one.
    ZeroSpeedup,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoPorts => write!(f, "switch must have at least one output port"),
            ConfigError::BufferTooSmall { buffer, ports } => write!(
                f,
                "buffer of {buffer} slots cannot serve {ports} ports (model requires B >= n)"
            ),
            ConfigError::ZeroWork { port } => {
                write!(f, "{port} configured with zero required work")
            }
            ConfigError::ZeroSpeedup => write!(f, "speedup must be at least 1"),
        }
    }
}

impl Error for ConfigError {}

/// Errors raised by buffer operations that violate the model's rules.
///
/// Policies implemented in `smbm-core` never trigger these when well-formed;
/// the switch validates anyway so that a buggy policy fails loudly instead of
/// silently corrupting an experiment ([C-VALIDATE]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// Attempted to admit a packet while the shared buffer is full.
    BufferFull,
    /// A port index outside `0..n` was used.
    UnknownPort {
        /// The offending port.
        port: PortId,
        /// Number of ports in the switch.
        ports: usize,
    },
    /// A packet's required work does not match its destination queue's
    /// configured requirement (violates the Section III model constraint).
    WorkMismatch {
        /// Destination port.
        port: PortId,
        /// Work carried by the packet, in cycles.
        packet_work: u32,
        /// Work configured for the port, in cycles.
        port_work: u32,
    },
    /// Attempted to push out a packet from an empty queue.
    EmptyQueue {
        /// The queue that was empty.
        port: PortId,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::BufferFull => write!(f, "shared buffer is full"),
            AdmitError::UnknownPort { port, ports } => {
                write!(f, "{port} does not exist (switch has {ports} ports)")
            }
            AdmitError::WorkMismatch {
                port,
                packet_work,
                port_work,
            } => write!(
                f,
                "packet with {packet_work} cycles sent to {port} which requires {port_work} cycles"
            ),
            AdmitError::EmptyQueue { port } => {
                write!(f, "cannot push out from empty queue at {port}")
            }
        }
    }
}

impl Error for AdmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_messages() {
        assert_eq!(
            ConfigError::NoPorts.to_string(),
            "switch must have at least one output port"
        );
        let e = ConfigError::BufferTooSmall {
            buffer: 2,
            ports: 4,
        };
        assert!(e.to_string().contains("B >= n"));
        let e = ConfigError::ZeroWork {
            port: PortId::new(1),
        };
        assert!(e.to_string().contains("port#2"));
        assert!(!ConfigError::ZeroSpeedup.to_string().is_empty());
    }

    #[test]
    fn admit_error_messages() {
        assert_eq!(AdmitError::BufferFull.to_string(), "shared buffer is full");
        let e = AdmitError::UnknownPort {
            port: PortId::new(5),
            ports: 3,
        };
        assert!(e.to_string().contains("3 ports"));
        let e = AdmitError::WorkMismatch {
            port: PortId::new(0),
            packet_work: 2,
            port_work: 3,
        };
        assert!(e.to_string().contains("requires 3 cycles"));
        let e = AdmitError::EmptyQueue {
            port: PortId::new(0),
        };
        assert!(e.to_string().contains("empty queue"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn is_error<E: Error + Send + Sync + 'static>() {}
        is_error::<ConfigError>();
        is_error::<AdmitError>();
    }
}
