//! Packet types for the two switch models.

use std::fmt;

use crate::{PortId, Slot, Value, Work};

/// A unit-sized packet in the heterogeneous-processing model (Section III).
///
/// Carries its destination output port and its required processing in cycles.
/// The model constrains every packet destined to port `i` to carry the same
/// requirement `w_i`; [`crate::WorkSwitch`] enforces this at admission time.
///
/// ```
/// use smbm_switch::{PortId, Work, WorkPacket};
/// let p = WorkPacket::new(PortId::new(0), Work::new(3));
/// assert_eq!(p.work().cycles(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkPacket {
    port: PortId,
    work: Work,
}

impl WorkPacket {
    /// Creates a packet destined to `port` requiring `work` cycles.
    pub const fn new(port: PortId, work: Work) -> Self {
        WorkPacket { port, work }
    }

    /// Destination output port.
    pub const fn port(self) -> PortId {
        self.port
    }

    /// Required processing.
    pub const fn work(self) -> Work {
        self.work
    }
}

impl fmt::Display for WorkPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} -> {}]", self.work, self.port)
    }
}

/// A unit-sized, unit-work packet in the heterogeneous-value model
/// (Section IV). Carries its destination output port and intrinsic value.
///
/// ```
/// use smbm_switch::{PortId, Value, ValuePacket};
/// let p = ValuePacket::new(PortId::new(1), Value::new(6));
/// assert_eq!(p.value().get(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ValuePacket {
    port: PortId,
    value: Value,
}

impl ValuePacket {
    /// Creates a packet destined to `port` with intrinsic `value`.
    pub const fn new(port: PortId, value: Value) -> Self {
        ValuePacket { port, value }
    }

    /// Destination output port.
    pub const fn port(self) -> PortId {
        self.port
    }

    /// Intrinsic value.
    pub const fn value(self) -> Value {
        self.value
    }
}

impl fmt::Display for ValuePacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} -> {}]", self.value, self.port)
    }
}

/// A packet that has been transmitted, together with timing information.
///
/// Produced by the transmission phase of either switch; useful for latency
/// accounting in the simulator's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transmitted {
    /// Port the packet left from.
    pub port: PortId,
    /// Value carried out (always 1 for the processing model, where throughput
    /// is a packet count).
    pub value: Value,
    /// Slot during which the packet arrived.
    pub arrived: Slot,
    /// Slot during which the packet was transmitted.
    pub departed: Slot,
}

impl Transmitted {
    /// Sojourn time in slots (arrival slot counts as zero).
    pub fn latency(&self) -> u64 {
        self.departed.since(self.arrived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_packet_accessors() {
        let p = WorkPacket::new(PortId::new(2), Work::new(4));
        assert_eq!(p.port(), PortId::new(2));
        assert_eq!(p.work(), Work::new(4));
        assert_eq!(p.to_string(), "[4cy -> port#3]");
    }

    #[test]
    fn value_packet_accessors() {
        let p = ValuePacket::new(PortId::new(0), Value::new(9));
        assert_eq!(p.port(), PortId::new(0));
        assert_eq!(p.value(), Value::new(9));
        assert_eq!(p.to_string(), "[$9 -> port#1]");
    }

    #[test]
    fn transmitted_latency() {
        let t = Transmitted {
            port: PortId::new(0),
            value: Value::ONE,
            arrived: Slot::new(3),
            departed: Slot::new(10),
        };
        assert_eq!(t.latency(), 7);
    }

    #[test]
    fn transmitted_same_slot_latency_is_zero() {
        let t = Transmitted {
            port: PortId::new(0),
            value: Value::ONE,
            arrived: Slot::new(5),
            departed: Slot::new(5),
        };
        assert_eq!(t.latency(), 0);
    }
}
