//! Validated switch configurations for both models.

use crate::{ConfigError, PortId, Work};

/// Configuration of a shared-memory switch in the heterogeneous-processing
/// model: a buffer capacity `B` and one fixed work requirement per output
/// port (`w_i` in the paper).
///
/// Constructed through [`WorkSwitchConfig::new`], which validates the model's
/// assumptions (`B >= n >= 1`, all `w_i >= 1`).
///
/// ```
/// use smbm_switch::WorkSwitchConfig;
/// // Contiguous configuration used throughout the paper's lower bounds:
/// // k ports, port i requires i+1 cycles.
/// let cfg = WorkSwitchConfig::contiguous(4, 16)?;
/// assert_eq!(cfg.ports(), 4);
/// assert_eq!(cfg.max_work().cycles(), 4);
/// # Ok::<(), smbm_switch::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkSwitchConfig {
    buffer: usize,
    works: Vec<Work>,
}

impl WorkSwitchConfig {
    /// Creates a configuration with shared buffer capacity `buffer` and the
    /// given per-port work requirements (`works[i]` is `w_i`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if there are no ports, if `buffer` is smaller
    /// than the number of ports, or if any requirement is zero.
    pub fn new(buffer: usize, works: Vec<Work>) -> Result<Self, ConfigError> {
        if works.is_empty() {
            return Err(ConfigError::NoPorts);
        }
        if buffer < works.len() {
            return Err(ConfigError::BufferTooSmall {
                buffer,
                ports: works.len(),
            });
        }
        for (i, w) in works.iter().enumerate() {
            if w.cycles() == 0 {
                return Err(ConfigError::ZeroWork {
                    port: PortId::new(i),
                });
            }
        }
        Ok(WorkSwitchConfig { buffer, works })
    }

    /// The *contiguous* configuration central to the paper's Section III-B:
    /// exactly `k` output ports where port `i` (zero-based) accepts packets
    /// with required processing `i + 1`, so requirements run `1..=k`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] under the same conditions as [`Self::new`].
    pub fn contiguous(k: u32, buffer: usize) -> Result<Self, ConfigError> {
        let works = (1..=k).map(Work::new).collect();
        Self::new(buffer, works)
    }

    /// A *striped* configuration: `copies` ports per work class `1..=k`
    /// (Fig. 2's setting has two ports sharing requirement 2 — "two
    /// different output queues can still accept packets with the same
    /// processing requirement").
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] under the same conditions as [`Self::new`].
    pub fn striped(k: u32, copies: usize, buffer: usize) -> Result<Self, ConfigError> {
        let mut works = Vec::with_capacity(k as usize * copies);
        for w in 1..=k {
            works.extend(std::iter::repeat_n(Work::new(w), copies));
        }
        Self::new(buffer, works)
    }

    /// A homogeneous configuration (`w_i = 1` for all ports): the classic
    /// shared-memory switch of Aiello et al., under which LWD degenerates to
    /// LQD.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] under the same conditions as [`Self::new`].
    pub fn homogeneous(ports: usize, buffer: usize) -> Result<Self, ConfigError> {
        Self::new(buffer, vec![Work::ONE; ports])
    }

    /// Shared buffer capacity `B` in packets.
    pub fn buffer(&self) -> usize {
        self.buffer
    }

    /// Number of output ports `n`.
    pub fn ports(&self) -> usize {
        self.works.len()
    }

    /// Work requirement `w_i` of the given port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn work(&self, port: PortId) -> Work {
        self.works[port.index()]
    }

    /// All per-port requirements, indexed by port.
    pub fn works(&self) -> &[Work] {
        &self.works
    }

    /// The largest per-port requirement (the paper's `k`).
    pub fn max_work(&self) -> Work {
        *self
            .works
            .iter()
            .max()
            .expect("validated: at least one port")
    }

    /// The sum of inverse requirements `Z = sum_i 1/w_i` used by NHST.
    pub fn inverse_work_sum(&self) -> f64 {
        self.works.iter().map(|w| 1.0 / w.cycles() as f64).sum()
    }

    /// True if all ports share the same requirement (homogeneous case).
    pub fn is_homogeneous(&self) -> bool {
        self.works.iter().all(|w| *w == self.works[0])
    }
}

/// Configuration of a shared-memory switch in the heterogeneous-value model:
/// a buffer capacity `B` and a number of output ports `n`. All packets have
/// unit work; values ride on the packets themselves.
///
/// ```
/// use smbm_switch::ValueSwitchConfig;
/// let cfg = ValueSwitchConfig::new(8, 4)?;
/// assert_eq!(cfg.buffer(), 8);
/// assert_eq!(cfg.ports(), 4);
/// # Ok::<(), smbm_switch::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueSwitchConfig {
    buffer: usize,
    ports: usize,
}

impl ValueSwitchConfig {
    /// Creates a configuration with shared buffer capacity `buffer` and
    /// `ports` output ports.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if there are no ports or `buffer < ports`.
    pub fn new(buffer: usize, ports: usize) -> Result<Self, ConfigError> {
        if ports == 0 {
            return Err(ConfigError::NoPorts);
        }
        if buffer < ports {
            return Err(ConfigError::BufferTooSmall { buffer, ports });
        }
        Ok(ValueSwitchConfig { buffer, ports })
    }

    /// Shared buffer capacity `B` in packets.
    pub fn buffer(&self) -> usize {
        self.buffer
    }

    /// Number of output ports `n`.
    pub fn ports(&self) -> usize {
        self.ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_ports() {
        assert_eq!(WorkSwitchConfig::new(4, vec![]), Err(ConfigError::NoPorts));
        assert_eq!(ValueSwitchConfig::new(4, 0), Err(ConfigError::NoPorts));
    }

    #[test]
    fn rejects_small_buffer() {
        let works = vec![Work::ONE; 4];
        assert_eq!(
            WorkSwitchConfig::new(3, works),
            Err(ConfigError::BufferTooSmall {
                buffer: 3,
                ports: 4
            })
        );
        assert_eq!(
            ValueSwitchConfig::new(3, 4),
            Err(ConfigError::BufferTooSmall {
                buffer: 3,
                ports: 4
            })
        );
    }

    #[test]
    fn rejects_zero_work() {
        let works = vec![Work::ONE, Work::new(0)];
        assert_eq!(
            WorkSwitchConfig::new(8, works),
            Err(ConfigError::ZeroWork {
                port: PortId::new(1)
            })
        );
    }

    #[test]
    fn contiguous_builds_one_to_k() {
        let cfg = WorkSwitchConfig::contiguous(5, 10).unwrap();
        assert_eq!(cfg.ports(), 5);
        assert_eq!(cfg.work(PortId::new(0)), Work::new(1));
        assert_eq!(cfg.work(PortId::new(4)), Work::new(5));
        assert_eq!(cfg.max_work(), Work::new(5));
        assert!(!cfg.is_homogeneous());
    }

    #[test]
    fn striped_duplicates_classes() {
        let cfg = WorkSwitchConfig::striped(3, 2, 12).unwrap();
        assert_eq!(cfg.ports(), 6);
        assert_eq!(
            cfg.works(),
            &[
                Work::new(1),
                Work::new(1),
                Work::new(2),
                Work::new(2),
                Work::new(3),
                Work::new(3)
            ]
        );
        assert!(!cfg.is_homogeneous());
        assert_eq!(cfg.max_work(), Work::new(3));
    }

    #[test]
    fn homogeneous_is_detected() {
        let cfg = WorkSwitchConfig::homogeneous(3, 6).unwrap();
        assert!(cfg.is_homogeneous());
        assert_eq!(cfg.max_work(), Work::ONE);
    }

    #[test]
    fn inverse_work_sum_matches_formula() {
        let cfg = WorkSwitchConfig::contiguous(4, 8).unwrap();
        let z = cfg.inverse_work_sum();
        let expected = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        assert!((z - expected).abs() < 1e-12);
    }

    #[test]
    fn buffer_equal_ports_is_allowed() {
        // Boundary of the B >= n assumption.
        assert!(WorkSwitchConfig::homogeneous(4, 4).is_ok());
        assert!(ValueSwitchConfig::new(4, 4).is_ok());
    }

    #[test]
    fn works_slice_exposed() {
        let cfg = WorkSwitchConfig::contiguous(3, 6).unwrap();
        assert_eq!(cfg.works(), &[Work::new(1), Work::new(2), Work::new(3)]);
    }
}
