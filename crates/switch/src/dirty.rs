//! Deduplicated tracking of which ports' queues changed since the last
//! drain — the switch-side half of the incremental score indices kept by
//! `smbm-core` policies.
//!
//! Every queue mutation marks its port; an indexed policy drains the set
//! before each admission decision and refreshes only those ports' keys
//! instead of rescanning all `n` queues. The set is a stack plus a per-port
//! flag, so marking is O(1), duplicate marks are free, and the memory is
//! bounded at `n` regardless of traffic.

use crate::PortId;

/// A deduplicated set of ports whose queues changed.
#[derive(Debug, Clone, Default)]
pub struct DirtyPorts {
    stack: Vec<u32>,
    flags: Vec<bool>,
}

impl DirtyPorts {
    /// Creates a tracker for `ports` output ports, all clean.
    pub fn new(ports: usize) -> Self {
        DirtyPorts {
            stack: Vec::with_capacity(ports),
            flags: vec![false; ports],
        }
    }

    /// Marks port `i` dirty; duplicate marks are ignored.
    pub fn mark(&mut self, i: usize) {
        if !self.flags[i] {
            self.flags[i] = true;
            self.stack.push(i as u32);
        }
    }

    /// Marks every port dirty.
    pub fn mark_all(&mut self) {
        for i in 0..self.flags.len() {
            self.mark(i);
        }
    }

    /// Number of ports currently marked.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// True when no port is marked.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// Moves the marked ports into `out` (cleared first) and resets the set.
    pub fn drain_into(&mut self, out: &mut Vec<PortId>) {
        out.clear();
        for &i in &self.stack {
            self.flags[i as usize] = false;
            out.push(PortId::new(i as usize));
        }
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_deduplicate() {
        let mut d = DirtyPorts::new(4);
        d.mark(2);
        d.mark(2);
        d.mark(0);
        assert_eq!(d.len(), 2);
        let mut out = Vec::new();
        d.drain_into(&mut out);
        assert_eq!(out, vec![PortId::new(2), PortId::new(0)]);
        assert!(d.is_empty());
    }

    #[test]
    fn drain_resets_flags_for_reuse() {
        let mut d = DirtyPorts::new(2);
        d.mark(1);
        let mut out = Vec::new();
        d.drain_into(&mut out);
        d.mark(1);
        d.drain_into(&mut out);
        assert_eq!(out, vec![PortId::new(1)]);
    }

    #[test]
    fn mark_all_covers_every_port() {
        let mut d = DirtyPorts::new(3);
        d.mark(1);
        d.mark_all();
        assert_eq!(d.len(), 3);
    }
}
