//! Pre-slab reference implementations of the per-port queues, kept as
//! differential-test oracles.
//!
//! These are the `VecDeque`/sorted-`Vec` queue types the switch used before
//! the [`crate::BufferCore`] slab refactor, preserved verbatim (minus the
//! switch wiring). They own their storage, so they need no `BufferCore`
//! argument; the proptests in `tests/reference.rs` drive them op-for-op
//! against the slab-backed queues and require identical observable behavior.
//!
//! They are *not* part of the simulation fast path — do not use them outside
//! tests and benchmarks.

use std::collections::VecDeque;

use crate::{RatioKey, Slot, Value, ValueEntry, Work};

/// Pre-slab [`crate::WorkQueue`]: FIFO arrival slots in a `VecDeque` plus the
/// head packet's residual cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkQueue {
    work: Work,
    head_residual: u32,
    arrivals: VecDeque<Slot>,
}

impl WorkQueue {
    /// Creates an empty queue whose packets all require `work` cycles.
    pub fn new(work: Work) -> Self {
        WorkQueue {
            work,
            head_residual: 0,
            arrivals: VecDeque::new(),
        }
    }

    /// The fixed per-packet requirement `w_i` of this queue.
    pub fn work(&self) -> Work {
        self.work
    }

    /// Number of resident packets.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Residual cycles of the head-of-line packet (zero when empty).
    pub fn head_residual(&self) -> u32 {
        self.head_residual
    }

    /// Total remaining work `W_i`.
    pub fn total_work(&self) -> u64 {
        if self.arrivals.is_empty() {
            0
        } else {
            self.head_residual as u64 + (self.arrivals.len() as u64 - 1) * self.work.as_u64()
        }
    }

    /// Appends a packet that arrived during `slot`.
    pub fn push_back(&mut self, slot: Slot) {
        if self.arrivals.is_empty() {
            self.head_residual = self.work.cycles();
        }
        self.arrivals.push_back(slot);
    }

    /// Removes the tail packet, returning its arrival slot.
    pub fn pop_back(&mut self) -> Option<Slot> {
        let popped = self.arrivals.pop_back();
        if self.arrivals.is_empty() {
            self.head_residual = 0;
        }
        popped
    }

    /// Applies up to `cycles` to the head, appending completed packets'
    /// arrival slots to `completions`; returns cycles used.
    pub fn process(&mut self, cycles: u32, completions: &mut Vec<Slot>) -> u32 {
        let mut budget = cycles;
        while budget > 0 && !self.arrivals.is_empty() {
            let step = budget.min(self.head_residual);
            self.head_residual -= step;
            budget -= step;
            if self.head_residual == 0 {
                let arrived = self
                    .arrivals
                    .pop_front()
                    .expect("non-empty queue has a head");
                completions.push(arrived);
                if !self.arrivals.is_empty() {
                    self.head_residual = self.work.cycles();
                }
            }
        }
        cycles - budget
    }

    /// Removes every resident packet, returning how many were discarded.
    pub fn clear(&mut self) -> u64 {
        let n = self.arrivals.len() as u64;
        self.arrivals.clear();
        self.head_residual = 0;
        n
    }

    /// Arrival slots of resident packets in FIFO order (head first).
    pub fn arrival_slots(&self) -> impl Iterator<Item = Slot> + '_ {
        self.arrivals.iter().copied()
    }

    /// Internal invariants: head residual in `1..=w` iff non-empty.
    pub fn invariants_hold(&self) -> bool {
        if self.arrivals.is_empty() {
            self.head_residual == 0
        } else {
            self.head_residual >= 1 && self.head_residual <= self.work.cycles()
        }
    }
}

/// Pre-slab [`crate::ValueQueue`]: entries in a `Vec`, sorted by value
/// descending, with `Vec::insert` / `remove(0)` costs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValueQueue {
    entries: Vec<ValueEntry>,
    sum: u64,
}

impl ValueQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of resident values.
    pub fn total_value(&self) -> u64 {
        self.sum
    }

    /// MRD's selection key `|Q_i|^2 / sum`, `None` when empty.
    pub fn ratio_key(&self) -> Option<RatioKey> {
        if self.entries.is_empty() {
            None
        } else {
            Some(RatioKey::new(
                (self.entries.len() as u128) * (self.entries.len() as u128),
                self.sum as u128,
            ))
        }
    }

    /// Largest resident value.
    pub fn max_value(&self) -> Option<Value> {
        self.entries.first().map(|e| e.value)
    }

    /// Smallest resident value.
    pub fn min_value(&self) -> Option<Value> {
        self.entries.last().map(|e| e.value)
    }

    /// Inserts keeping descending order; equal values keep arrival order.
    pub fn insert(&mut self, value: Value, slot: Slot) {
        let pos = self.entries.partition_point(|e| e.value >= value);
        self.entries.insert(
            pos,
            ValueEntry {
                value,
                arrived: slot,
            },
        );
        self.sum += value.get();
    }

    /// Removes and returns the most valuable packet.
    pub fn pop_max(&mut self) -> Option<ValueEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let e = self.entries.remove(0);
        self.sum -= e.value.get();
        Some(e)
    }

    /// Removes and returns the least valuable packet.
    pub fn pop_min(&mut self) -> Option<ValueEntry> {
        let e = self.entries.pop()?;
        self.sum -= e.value.get();
        Some(e)
    }

    /// Removes every resident packet, returning how many were discarded.
    pub fn clear(&mut self) -> u64 {
        let n = self.entries.len() as u64;
        self.entries.clear();
        self.sum = 0;
        n
    }

    /// Resident entries in descending-value order.
    pub fn entries(&self) -> &[ValueEntry] {
        &self.entries
    }

    /// Internal invariants: descending order and a correct cached sum.
    pub fn invariants_hold(&self) -> bool {
        let sorted = self.entries.windows(2).all(|w| w[0].value >= w[1].value);
        let sum: u64 = self.entries.iter().map(|e| e.value.get()).sum();
        sorted && sum == self.sum
    }
}

/// Pre-slab [`crate::CombinedQueue`]: run-to-completion service slot plus a
/// value-sorted `Vec` backlog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedQueue {
    work: Work,
    in_service: Option<crate::InService>,
    backlog: Vec<(Value, Slot)>,
    value_sum: u64,
}

impl CombinedQueue {
    /// Creates an empty queue whose packets all require `work` cycles.
    pub fn new(work: Work) -> Self {
        CombinedQueue {
            work,
            in_service: None,
            backlog: Vec::new(),
            value_sum: 0,
        }
    }

    /// Number of resident packets (service + backlog).
    pub fn len(&self) -> usize {
        self.backlog.len() + usize::from(self.in_service.is_some())
    }

    /// True when no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.in_service.is_none() && self.backlog.is_empty()
    }

    /// The packet currently in service, if any.
    pub fn in_service(&self) -> Option<&crate::InService> {
        self.in_service.as_ref()
    }

    /// Total outstanding work.
    pub fn total_work(&self) -> u64 {
        self.in_service.map_or(0, |s| s.residual as u64)
            + self.backlog.len() as u64 * self.work.as_u64()
    }

    /// Sum of resident values.
    pub fn total_value(&self) -> u64 {
        self.value_sum
    }

    /// Smallest resident value.
    pub fn min_value(&self) -> Option<Value> {
        let backlog_min = self.backlog.last().map(|&(v, _)| v);
        let service = self.in_service.map(|s| s.value);
        match (backlog_min, service) {
            (Some(b), Some(s)) => Some(b.min(s)),
            (b, s) => b.or(s),
        }
    }

    /// Inserts a packet; enters service immediately when the queue was idle.
    pub fn insert(&mut self, value: Value, slot: Slot) {
        self.value_sum += value.get();
        if self.in_service.is_none() && self.backlog.is_empty() {
            self.in_service = Some(crate::InService {
                value,
                residual: self.work.cycles(),
                arrived: slot,
            });
            return;
        }
        let pos = self.backlog.partition_point(|&(v, _)| v >= value);
        self.backlog.insert(pos, (value, slot));
    }

    /// Evicts the lowest-value packet (backlog minimum, else the serviced
    /// packet), returning its value.
    pub fn evict_min(&mut self) -> Option<Value> {
        if let Some((v, _)) = self.backlog.pop() {
            self.value_sum -= v.get();
            return Some(v);
        }
        let s = self.in_service.take()?;
        self.value_sum -= s.value.get();
        Some(s.value)
    }

    /// Applies up to `cycles`, promoting from the backlog as packets
    /// complete; returns cycles used.
    pub fn process(&mut self, cycles: u32, completions: &mut Vec<(Value, Slot)>) -> u32 {
        let mut budget = cycles;
        while budget > 0 {
            let Some(current) = self.in_service.as_mut() else {
                let Some((value, arrived)) = take_first(&mut self.backlog) else {
                    break;
                };
                self.in_service = Some(crate::InService {
                    value,
                    residual: self.work.cycles(),
                    arrived,
                });
                continue;
            };
            let step = budget.min(current.residual);
            current.residual -= step;
            budget -= step;
            if current.residual == 0 {
                let done = self.in_service.take().expect("current exists");
                self.value_sum -= done.value.get();
                completions.push((done.value, done.arrived));
            }
        }
        cycles - budget
    }

    /// Removes every resident packet, returning how many were discarded.
    pub fn clear(&mut self) -> u64 {
        let n = self.len() as u64;
        self.in_service = None;
        self.backlog.clear();
        self.value_sum = 0;
        n
    }

    /// Internal invariants: descending backlog and a correct sum.
    pub fn invariants_hold(&self) -> bool {
        let sorted = self.backlog.windows(2).all(|w| w[0].0 >= w[1].0);
        let sum: u64 = self.backlog.iter().map(|&(v, _)| v.get()).sum::<u64>()
            + self.in_service.map_or(0, |s| s.value.get());
        let service_ok = self
            .in_service
            .is_none_or(|s| s.residual >= 1 && s.residual <= self.work.cycles());
        sorted && sum == self.value_sum && service_ok
    }
}

fn take_first(backlog: &mut Vec<(Value, Slot)>) -> Option<(Value, Slot)> {
    if backlog.is_empty() {
        None
    } else {
        Some(backlog.remove(0))
    }
}
