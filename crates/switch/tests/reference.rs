//! Differential tests: the optimized queue structures against naive
//! reference models, driven by random operation sequences.

use proptest::prelude::*;

use smbm_switch::{Slot, Value, ValueQueue, Work, WorkQueue};

// ---------------------------------------------------------------------
// WorkQueue vs a reference that stores explicit residuals per packet.
// ---------------------------------------------------------------------

/// Reference model: a plain vector of per-packet residual cycles.
#[derive(Debug, Default)]
struct RefWorkQueue {
    work: u32,
    residuals: Vec<u32>,
}

impl RefWorkQueue {
    fn new(work: u32) -> Self {
        RefWorkQueue {
            work,
            residuals: Vec::new(),
        }
    }

    fn push_back(&mut self) {
        self.residuals.push(self.work);
    }

    fn pop_back(&mut self) -> bool {
        self.residuals.pop().is_some()
    }

    fn process(&mut self, mut cycles: u32) -> u32 {
        let budget = cycles;
        while cycles > 0 && !self.residuals.is_empty() {
            let step = cycles.min(self.residuals[0]);
            self.residuals[0] -= step;
            cycles -= step;
            if self.residuals[0] == 0 {
                self.residuals.remove(0);
            }
        }
        budget - cycles
    }

    fn total_work(&self) -> u64 {
        self.residuals.iter().map(|&r| r as u64).sum()
    }
}

#[derive(Debug, Clone)]
enum WorkOp {
    Push,
    PopBack,
    Process(u32),
}

fn work_ops() -> impl Strategy<Value = Vec<WorkOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(WorkOp::Push),
            1 => Just(WorkOp::PopBack),
            2 => (1u32..=5).prop_map(WorkOp::Process),
        ],
        0..60,
    )
}

proptest! {
    #[test]
    fn work_queue_matches_reference(work in 1u32..=5, ops in work_ops()) {
        let mut q = WorkQueue::new(Work::new(work));
        let mut reference = RefWorkQueue::new(work);
        let mut completions = Vec::new();
        for op in ops {
            match op {
                WorkOp::Push => {
                    q.push_back(Slot::ZERO);
                    reference.push_back();
                }
                WorkOp::PopBack => {
                    let got = q.pop_back().is_some();
                    let want = reference.pop_back();
                    prop_assert_eq!(got, want);
                }
                WorkOp::Process(c) => {
                    completions.clear();
                    let used = q.process(c, &mut completions);
                    let ref_before = reference.residuals.len();
                    let ref_used = reference.process(c);
                    let ref_done = ref_before - reference.residuals.len();
                    prop_assert_eq!(used, ref_used, "cycles diverged");
                    prop_assert_eq!(completions.len(), ref_done, "completions diverged");
                }
            }
            prop_assert_eq!(q.len(), reference.residuals.len());
            prop_assert_eq!(q.total_work(), reference.total_work());
            prop_assert!(q.invariants_hold());
        }
    }
}

// ---------------------------------------------------------------------
// ValueQueue vs a reference backed by an unsorted vector.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct RefValueQueue {
    values: Vec<u64>,
}

impl RefValueQueue {
    fn insert(&mut self, v: u64) {
        self.values.push(v);
    }

    fn pop_max(&mut self) -> Option<u64> {
        let (i, _) = self.values.iter().enumerate().max_by_key(|&(_, v)| *v)?;
        Some(self.values.swap_remove(i))
    }

    fn pop_min(&mut self) -> Option<u64> {
        let (i, _) = self.values.iter().enumerate().min_by_key(|&(_, v)| *v)?;
        Some(self.values.swap_remove(i))
    }

    fn sum(&self) -> u64 {
        self.values.iter().sum()
    }
}

#[derive(Debug, Clone)]
enum ValueOp {
    Insert(u64),
    PopMax,
    PopMin,
}

fn value_ops() -> impl Strategy<Value = Vec<ValueOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1u64..=9).prop_map(ValueOp::Insert),
            1 => Just(ValueOp::PopMax),
            1 => Just(ValueOp::PopMin),
        ],
        0..80,
    )
}

proptest! {
    #[test]
    fn value_queue_matches_reference(ops in value_ops()) {
        let mut q = ValueQueue::new();
        let mut reference = RefValueQueue::default();
        for op in ops {
            match op {
                ValueOp::Insert(v) => {
                    q.insert(Value::new(v), Slot::ZERO);
                    reference.insert(v);
                }
                ValueOp::PopMax => {
                    let got = q.pop_max().map(|e| e.value.get());
                    let want = reference.pop_max();
                    prop_assert_eq!(got, want);
                }
                ValueOp::PopMin => {
                    let got = q.pop_min().map(|e| e.value.get());
                    let want = reference.pop_min();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(q.len(), reference.values.len());
            prop_assert_eq!(q.total_value(), reference.sum());
            prop_assert_eq!(
                q.min_value().map(|v| v.get()),
                reference.values.iter().min().copied()
            );
            prop_assert_eq!(
                q.max_value().map(|v| v.get()),
                reference.values.iter().max().copied()
            );
            prop_assert!(q.invariants_hold());
        }
    }

    /// The cached ratio key always equals len^2 / sum computed from scratch.
    #[test]
    fn ratio_key_is_consistent(values in proptest::collection::vec(1u64..=9, 1..30)) {
        let mut q = ValueQueue::new();
        for &v in &values {
            q.insert(Value::new(v), Slot::ZERO);
        }
        let key = q.ratio_key().expect("non-empty");
        let expect = (values.len() as f64).powi(2) / values.iter().sum::<u64>() as f64;
        prop_assert!((key.as_f64() - expect).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// CombinedQueue vs a reference with explicit (value, residual) packets.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct RefCombinedQueue {
    work: u32,
    /// In-service packet (value, residual), then backlog values (unsorted).
    service: Option<(u64, u32)>,
    backlog: Vec<u64>,
}

impl RefCombinedQueue {
    fn new(work: u32) -> Self {
        RefCombinedQueue {
            work,
            service: None,
            backlog: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.backlog.len() + usize::from(self.service.is_some())
    }

    fn insert(&mut self, v: u64) {
        if self.service.is_none() && self.backlog.is_empty() {
            self.service = Some((v, self.work));
        } else {
            self.backlog.push(v);
        }
    }

    fn evict_min(&mut self) -> Option<u64> {
        if let Some((i, _)) = self.backlog.iter().enumerate().min_by_key(|&(_, v)| *v) {
            return Some(self.backlog.swap_remove(i));
        }
        self.service.take().map(|(v, _)| v)
    }

    fn process(&mut self, mut cycles: u32, done: &mut Vec<u64>) -> u32 {
        let budget = cycles;
        while cycles > 0 {
            match self.service.as_mut() {
                None => {
                    // Promote max backlog value.
                    let Some((i, _)) = self.backlog.iter().enumerate().max_by_key(|&(_, v)| *v)
                    else {
                        break;
                    };
                    let v = self.backlog.remove(i);
                    self.service = Some((v, self.work));
                }
                Some((v, r)) => {
                    let step = cycles.min(*r);
                    *r -= step;
                    cycles -= step;
                    if *r == 0 {
                        done.push(*v);
                        self.service = None;
                    }
                }
            }
        }
        budget - cycles
    }

    fn total_value(&self) -> u64 {
        self.backlog.iter().sum::<u64>() + self.service.map_or(0, |(v, _)| v)
    }

    fn total_work(&self) -> u64 {
        self.backlog.len() as u64 * self.work as u64 + self.service.map_or(0, |(_, r)| r as u64)
    }
}

#[derive(Debug, Clone)]
enum CombinedOp {
    Insert(u64),
    EvictMin,
    Process(u32),
}

fn combined_ops() -> impl Strategy<Value = Vec<CombinedOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1u64..=9).prop_map(CombinedOp::Insert),
            1 => Just(CombinedOp::EvictMin),
            2 => (1u32..=5).prop_map(CombinedOp::Process),
        ],
        0..60,
    )
}

proptest! {
    #[test]
    fn combined_queue_matches_reference(work in 1u32..=4, ops in combined_ops()) {
        use smbm_switch::CombinedQueue;
        let mut q = CombinedQueue::new(Work::new(work));
        let mut reference = RefCombinedQueue::new(work);
        let mut done = Vec::new();
        let mut ref_done = Vec::new();
        for op in ops {
            match op {
                CombinedOp::Insert(v) => {
                    q.insert(Value::new(v), Slot::ZERO);
                    reference.insert(v);
                }
                CombinedOp::EvictMin => {
                    let got = q.evict_min().map(|v| v.get());
                    let want = reference.evict_min();
                    prop_assert_eq!(got, want);
                }
                CombinedOp::Process(c) => {
                    done.clear();
                    ref_done.clear();
                    let used = q.process(c, &mut done);
                    let ref_used = reference.process(c, &mut ref_done);
                    prop_assert_eq!(used, ref_used, "cycles diverged");
                    let got: Vec<u64> = done.iter().map(|&(v, _)| v.get()).collect();
                    prop_assert_eq!(&got, &ref_done, "completions diverged");
                }
            }
            prop_assert_eq!(q.len(), reference.len());
            prop_assert_eq!(q.total_value(), reference.total_value());
            prop_assert_eq!(q.total_work(), reference.total_work());
            prop_assert!(q.invariants_hold());
        }
    }
}
