//! Differential tests for the slab-backed queue structures, driven by random
//! operation sequences against two independent oracles:
//!
//! * the pre-slab queue implementations preserved verbatim in
//!   [`smbm_switch::reference`], compared packet-for-packet;
//! * naive in-test models (plain vectors of residuals / values), compared on
//!   aggregates.
//!
//! Every single operation is followed by a [`BufferCore`] accounting check:
//! `allocated + free == B`, the free list is cycle-free and correctly marked
//! — i.e. no slot is ever leaked or double-freed.

use proptest::prelude::*;

use smbm_switch::{reference, BufferCore, Slot, Value, ValueQueue, Work, WorkQueue};

// ---------------------------------------------------------------------
// WorkQueue vs the pre-slab queue and a vector of explicit residuals.
// ---------------------------------------------------------------------

/// Naive model: a plain vector of per-packet residual cycles.
#[derive(Debug, Default)]
struct NaiveWorkQueue {
    work: u32,
    residuals: Vec<u32>,
}

impl NaiveWorkQueue {
    fn new(work: u32) -> Self {
        NaiveWorkQueue {
            work,
            residuals: Vec::new(),
        }
    }

    fn push_back(&mut self) {
        self.residuals.push(self.work);
    }

    fn pop_back(&mut self) -> bool {
        self.residuals.pop().is_some()
    }

    fn process(&mut self, mut cycles: u32) -> u32 {
        let budget = cycles;
        while cycles > 0 && !self.residuals.is_empty() {
            let step = cycles.min(self.residuals[0]);
            self.residuals[0] -= step;
            cycles -= step;
            if self.residuals[0] == 0 {
                self.residuals.remove(0);
            }
        }
        budget - cycles
    }

    fn total_work(&self) -> u64 {
        self.residuals.iter().map(|&r| r as u64).sum()
    }
}

#[derive(Debug, Clone)]
enum WorkOp {
    Push,
    PopBack,
    Process(u32),
}

fn work_ops() -> impl Strategy<Value = Vec<WorkOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => Just(WorkOp::Push),
            1 => Just(WorkOp::PopBack),
            2 => (1u32..=5).prop_map(WorkOp::Process),
        ],
        0..60,
    )
}

proptest! {
    #[test]
    fn work_queue_matches_reference(work in 1u32..=5, ops in work_ops()) {
        let mut core = BufferCore::new(64);
        let mut q = WorkQueue::new(Work::new(work));
        let mut pre_slab = reference::WorkQueue::new(Work::new(work));
        let mut naive = NaiveWorkQueue::new(work);
        let mut completions = Vec::new();
        let mut ref_completions = Vec::new();
        let mut seq = 0u64;
        for op in ops {
            match op {
                WorkOp::Push => {
                    let slot = Slot::new(seq);
                    seq += 1;
                    q.push_back(&mut core, slot);
                    pre_slab.push_back(slot);
                    naive.push_back();
                }
                WorkOp::PopBack => {
                    let got = q.pop_back(&mut core);
                    prop_assert_eq!(got, pre_slab.pop_back());
                    prop_assert_eq!(got.is_some(), naive.pop_back());
                }
                WorkOp::Process(c) => {
                    completions.clear();
                    ref_completions.clear();
                    let used = q.process(&mut core, c, &mut completions);
                    let ref_used = pre_slab.process(c, &mut ref_completions);
                    let naive_before = naive.residuals.len();
                    let naive_used = naive.process(c);
                    let naive_done = naive_before - naive.residuals.len();
                    prop_assert_eq!(used, ref_used, "cycles diverged from pre-slab");
                    prop_assert_eq!(used, naive_used, "cycles diverged from naive");
                    prop_assert_eq!(&completions, &ref_completions, "completions diverged");
                    prop_assert_eq!(completions.len(), naive_done);
                }
            }
            prop_assert_eq!(q.len(), pre_slab.len());
            prop_assert_eq!(q.len(), naive.residuals.len());
            prop_assert_eq!(q.total_work(), pre_slab.total_work());
            prop_assert_eq!(q.total_work(), naive.total_work());
            prop_assert_eq!(q.head_residual(), pre_slab.head_residual());
            let slots: Vec<Slot> = q.arrival_slots(&core).collect();
            let ref_slots: Vec<Slot> = pre_slab.arrival_slots().collect();
            prop_assert_eq!(slots, ref_slots, "FIFO order diverged");
            prop_assert!(q.invariants_hold());
            prop_assert!(pre_slab.invariants_hold());
            prop_assert!(core.check_accounting().is_ok());
            prop_assert_eq!(core.allocated(), q.len());
        }
    }
}

// ---------------------------------------------------------------------
// ValueQueue vs the pre-slab sorted queue and an unsorted vector.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct NaiveValueQueue {
    values: Vec<u64>,
}

impl NaiveValueQueue {
    fn insert(&mut self, v: u64) {
        self.values.push(v);
    }

    fn pop_max(&mut self) -> Option<u64> {
        let (i, _) = self.values.iter().enumerate().max_by_key(|&(_, v)| *v)?;
        Some(self.values.swap_remove(i))
    }

    fn pop_min(&mut self) -> Option<u64> {
        let (i, _) = self.values.iter().enumerate().min_by_key(|&(_, v)| *v)?;
        Some(self.values.swap_remove(i))
    }

    fn sum(&self) -> u64 {
        self.values.iter().sum()
    }
}

#[derive(Debug, Clone)]
enum ValueOp {
    Insert(u64),
    PopMax,
    PopMin,
}

fn value_ops() -> impl Strategy<Value = Vec<ValueOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1u64..=9).prop_map(ValueOp::Insert),
            1 => Just(ValueOp::PopMax),
            1 => Just(ValueOp::PopMin),
        ],
        0..80,
    )
}

proptest! {
    #[test]
    fn value_queue_matches_reference(ops in value_ops()) {
        let mut core = BufferCore::new(96);
        let mut q = ValueQueue::new();
        let mut pre_slab = reference::ValueQueue::new();
        let mut naive = NaiveValueQueue::default();
        let mut seq = 0u64;
        for op in ops {
            match op {
                ValueOp::Insert(v) => {
                    let slot = Slot::new(seq);
                    seq += 1;
                    q.insert(&mut core, Value::new(v), slot);
                    pre_slab.insert(Value::new(v), slot);
                    naive.insert(v);
                }
                ValueOp::PopMax => {
                    let got = q.pop_max(&mut core);
                    prop_assert_eq!(got, pre_slab.pop_max(), "pop_max diverged");
                    prop_assert_eq!(got.map(|e| e.value.get()), naive.pop_max());
                }
                ValueOp::PopMin => {
                    let got = q.pop_min(&mut core);
                    prop_assert_eq!(got, pre_slab.pop_min(), "pop_min diverged");
                    prop_assert_eq!(got.map(|e| e.value.get()), naive.pop_min());
                }
            }
            // The slab queue and the pre-slab queue must agree on the exact
            // (value, arrival) sequence, including order among equal values.
            let entries: Vec<_> = q.entries(&core).collect();
            prop_assert_eq!(entries.as_slice(), pre_slab.entries());
            prop_assert_eq!(q.len(), naive.values.len());
            prop_assert_eq!(q.total_value(), naive.sum());
            prop_assert_eq!(
                q.min_value().map(|v| v.get()),
                naive.values.iter().min().copied()
            );
            prop_assert_eq!(
                q.max_value().map(|v| v.get()),
                naive.values.iter().max().copied()
            );
            prop_assert_eq!(q.ratio_key(), pre_slab.ratio_key());
            prop_assert!(q.invariants_hold(&core));
            prop_assert!(pre_slab.invariants_hold());
            prop_assert!(core.check_accounting().is_ok());
            prop_assert_eq!(core.allocated(), q.len());
        }
    }

    /// The cached ratio key always equals len^2 / sum computed from scratch.
    #[test]
    fn ratio_key_is_consistent(values in proptest::collection::vec(1u64..=9, 1..30)) {
        let mut core = BufferCore::new(32);
        let mut q = ValueQueue::new();
        for &v in &values {
            q.insert(&mut core, Value::new(v), Slot::ZERO);
        }
        let key = q.ratio_key().expect("non-empty");
        let expect = (values.len() as f64).powi(2) / values.iter().sum::<u64>() as f64;
        prop_assert!((key.as_f64() - expect).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// CombinedQueue vs the pre-slab queue and explicit (value, residual) packets.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct NaiveCombinedQueue {
    work: u32,
    /// In-service packet (value, residual), then backlog values (unsorted).
    service: Option<(u64, u32)>,
    backlog: Vec<u64>,
}

impl NaiveCombinedQueue {
    fn new(work: u32) -> Self {
        NaiveCombinedQueue {
            work,
            service: None,
            backlog: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.backlog.len() + usize::from(self.service.is_some())
    }

    fn insert(&mut self, v: u64) {
        if self.service.is_none() && self.backlog.is_empty() {
            self.service = Some((v, self.work));
        } else {
            self.backlog.push(v);
        }
    }

    fn evict_min(&mut self) -> Option<u64> {
        if let Some((i, _)) = self.backlog.iter().enumerate().min_by_key(|&(_, v)| *v) {
            return Some(self.backlog.swap_remove(i));
        }
        self.service.take().map(|(v, _)| v)
    }

    fn process(&mut self, mut cycles: u32, done: &mut Vec<u64>) -> u32 {
        let budget = cycles;
        while cycles > 0 {
            match self.service.as_mut() {
                None => {
                    // Promote max backlog value.
                    let Some((i, _)) = self.backlog.iter().enumerate().max_by_key(|&(_, v)| *v)
                    else {
                        break;
                    };
                    let v = self.backlog.remove(i);
                    self.service = Some((v, self.work));
                }
                Some((v, r)) => {
                    let step = cycles.min(*r);
                    *r -= step;
                    cycles -= step;
                    if *r == 0 {
                        done.push(*v);
                        self.service = None;
                    }
                }
            }
        }
        budget - cycles
    }

    fn total_value(&self) -> u64 {
        self.backlog.iter().sum::<u64>() + self.service.map_or(0, |(v, _)| v)
    }

    fn total_work(&self) -> u64 {
        self.backlog.len() as u64 * self.work as u64 + self.service.map_or(0, |(_, r)| r as u64)
    }
}

#[derive(Debug, Clone)]
enum CombinedOp {
    Insert(u64),
    EvictMin,
    Process(u32),
}

fn combined_ops() -> impl Strategy<Value = Vec<CombinedOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1u64..=9).prop_map(CombinedOp::Insert),
            1 => Just(CombinedOp::EvictMin),
            2 => (1u32..=5).prop_map(CombinedOp::Process),
        ],
        0..60,
    )
}

proptest! {
    #[test]
    fn combined_queue_matches_reference(work in 1u32..=4, ops in combined_ops()) {
        use smbm_switch::CombinedQueue;
        let mut core = BufferCore::new(64);
        let mut q = CombinedQueue::new(Work::new(work));
        let mut pre_slab = reference::CombinedQueue::new(Work::new(work));
        let mut naive = NaiveCombinedQueue::new(work);
        let mut done = Vec::new();
        let mut ref_done = Vec::new();
        let mut naive_done = Vec::new();
        let mut seq = 0u64;
        for op in ops {
            match op {
                CombinedOp::Insert(v) => {
                    let slot = Slot::new(seq);
                    seq += 1;
                    q.insert(&mut core, Value::new(v), slot);
                    pre_slab.insert(Value::new(v), slot);
                    naive.insert(v);
                }
                CombinedOp::EvictMin => {
                    let got = q.evict_min(&mut core);
                    prop_assert_eq!(got, pre_slab.evict_min(), "evict_min diverged");
                    prop_assert_eq!(got.map(|v| v.get()), naive.evict_min());
                }
                CombinedOp::Process(c) => {
                    done.clear();
                    ref_done.clear();
                    naive_done.clear();
                    let used = q.process(&mut core, c, &mut done);
                    let ref_used = pre_slab.process(c, &mut ref_done);
                    let naive_used = naive.process(c, &mut naive_done);
                    prop_assert_eq!(used, ref_used, "cycles diverged from pre-slab");
                    prop_assert_eq!(used, naive_used, "cycles diverged from naive");
                    prop_assert_eq!(&done, &ref_done, "completions diverged");
                    let got: Vec<u64> = done.iter().map(|&(v, _)| v.get()).collect();
                    prop_assert_eq!(&got, &naive_done);
                }
            }
            prop_assert_eq!(q.len(), pre_slab.len());
            prop_assert_eq!(q.len(), naive.len());
            prop_assert_eq!(q.in_service(), pre_slab.in_service());
            prop_assert_eq!(q.total_value(), pre_slab.total_value());
            prop_assert_eq!(q.total_value(), naive.total_value());
            prop_assert_eq!(q.total_work(), pre_slab.total_work());
            prop_assert_eq!(q.total_work(), naive.total_work());
            prop_assert_eq!(q.min_value(), pre_slab.min_value());
            prop_assert!(q.invariants_hold(&core));
            prop_assert!(pre_slab.invariants_hold());
            prop_assert!(core.check_accounting().is_ok());
            prop_assert_eq!(core.allocated(), q.len());
        }
    }
}

// ---------------------------------------------------------------------
// Slab free-list accounting with many queues sharing one arena.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum SlabOp {
    Insert { queue: usize, value: u64 },
    PopMax { queue: usize },
    PopMin { queue: usize },
    Clear { queue: usize },
}

fn slab_ops() -> impl Strategy<Value = Vec<SlabOp>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0usize..4, 1u64..=9).prop_map(|(queue, value)| SlabOp::Insert { queue, value }),
            2 => (0usize..4).prop_map(|queue| SlabOp::PopMax { queue }),
            2 => (0usize..4).prop_map(|queue| SlabOp::PopMin { queue }),
            1 => (0usize..4).prop_map(|queue| SlabOp::Clear { queue }),
        ],
        0..120,
    )
}

proptest! {
    /// Interleaved operations on four queues sharing one slab never leak or
    /// double-free a slot: after every operation `allocated + free == B`,
    /// the free chain is intact, and allocation equals the sum of lengths.
    #[test]
    fn slab_accounting_never_leaks(ops in slab_ops()) {
        const B: usize = 48;
        let mut core = BufferCore::new(B);
        let mut queues = [
            ValueQueue::new(),
            ValueQueue::new(),
            ValueQueue::new(),
            ValueQueue::new(),
        ];
        for op in ops {
            match op {
                SlabOp::Insert { queue, value } => {
                    if core.free_slots() > 0 {
                        queues[queue].insert(&mut core, Value::new(value), Slot::ZERO);
                    }
                }
                SlabOp::PopMax { queue } => {
                    queues[queue].pop_max(&mut core);
                }
                SlabOp::PopMin { queue } => {
                    queues[queue].pop_min(&mut core);
                }
                SlabOp::Clear { queue } => {
                    queues[queue].clear(&mut core);
                }
            }
            prop_assert!(core.check_accounting().is_ok(), "{:?}", core.check_accounting());
            prop_assert_eq!(core.capacity(), B);
            let total: usize = queues.iter().map(ValueQueue::len).sum();
            prop_assert_eq!(core.allocated(), total);
            prop_assert_eq!(core.free_slots(), B - total);
            for q in &queues {
                prop_assert!(q.invariants_hold(&core));
            }
        }
    }
}
