//! Replay the paper's lower-bound proofs as executable traces: each
//! theorem's adversarial arrival sequence is run against the policy it
//! targets *and* against the scripted OPT the proof describes, and the
//! measured ratio is compared to the theorem's formula.
//!
//! Run with: `cargo run --release --example adversarial_bounds`

use smbm_sim::{measure_value_construction, measure_work_construction, ConstructionReport};
use smbm_traffic::adversarial;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("replaying the Section III/IV lower-bound constructions...\n");
    let reports: Vec<ConstructionReport> = vec![
        measure_work_construction(&adversarial::nhst_lower_bound(8, 192, 5))?,
        measure_work_construction(&adversarial::nest_lower_bound(8, 48, 5))?,
        measure_work_construction(&adversarial::nhdt_lower_bound(64, 512, 3))?,
        measure_work_construction(&adversarial::lqd_work_lower_bound(64, 256, 3))?,
        measure_work_construction(&adversarial::bpd_lower_bound(16, 64, 5_000))?,
        measure_work_construction(&adversarial::lwd_lower_bound(120, 10))?,
        measure_value_construction(&adversarial::lqd_value_lower_bound(64, 128, 5))?,
        measure_value_construction(&adversarial::mvd_lower_bound(16, 64, 5_000))?,
        measure_value_construction(&adversarial::mrd_lower_bound(120, 10))?,
    ];

    println!(
        "{:<30} {:>8} {:>10} {:>10}",
        "construction", "policy", "measured", "predicted"
    );
    for r in &reports {
        println!(
            "{:<30} {:>8} {:>10.3} {:>10.3}",
            r.name,
            r.policy,
            r.ratio(),
            r.predicted
        );
    }

    // LWD is the punchline: even its own worst-case trace cannot push it
    // past 2 (Theorem 7), while every other policy's construction grows.
    let lwd = reports
        .iter()
        .find(|r| r.name.contains("LWD"))
        .expect("present");
    assert!(
        lwd.ratio() < 2.0,
        "Theorem 7 violated: LWD measured {}",
        lwd.ratio()
    );
    println!("\nTheorem 7 check passed: LWD stayed below 2 on its adversarial trace.");
    Ok(())
}
