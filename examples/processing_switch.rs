//! Heterogeneous processing end-to-end: a network-processor front end where
//! ports run services of very different costs (forwarding, VPN, DPI,
//! firewall — the workloads the paper's introduction motivates), compared
//! across all Section III policies under increasing congestion.
//!
//! Run with: `cargo run --release --example processing_switch`

use smbm_sim::{EngineConfig, FlushPolicy, WorkExperiment};
use smbm_switch::{Work, WorkSwitchConfig};
use smbm_traffic::{MmppParams, MmppScenario, PortMix};

/// Service classes hosted on the switch's cores: name and cycles/packet.
const SERVICES: [(&str, u32); 6] = [
    ("forwarding", 1),
    ("nat", 2),
    ("vpn-ipsec", 4),
    ("ssl-terminate", 6),
    ("dpi", 10),
    ("firewall-deep", 16),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let works: Vec<Work> = SERVICES.iter().map(|&(_, w)| Work::new(w)).collect();
    let config = WorkSwitchConfig::new(96, works)?;
    println!("shared buffer: {} slots, services:", config.buffer());
    for (i, (name, w)) in SERVICES.iter().enumerate() {
        println!("  port {}: {:<14} {:>2} cycles/packet", i + 1, name, w);
    }

    // Sweep offered load by scaling the number of MMPP sources; DPI-heavy
    // mix: the expensive services attract a third of the traffic.
    let mix = PortMix::Weighted(vec![6.0, 4.0, 3.0, 3.0, 2.0, 2.0]);
    println!(
        "\n{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "load", "NHST", "NEST", "NHDT", "LQD", "BPD", "BPD1", "LWD"
    );
    for sources in [4usize, 8, 16, 32] {
        let scenario = MmppScenario {
            sources,
            params: MmppParams::default(),
            slots: 30_000,
            seed: 99,
        };
        let trace = scenario.work_trace(&config, &mix)?;
        let mut exp = WorkExperiment::full_roster(config.clone(), 1);
        exp.engine = EngineConfig {
            flush: Some(FlushPolicy::every(10_000)),
            drain_at_end: true,
        };
        let report = exp.run(&trace)?;
        print!("{:<10}", format!("{}src", sources));
        for row in &report.rows {
            print!(" {:>8.3}", row.ratio);
        }
        println!();
    }

    println!(
        "\nreading: ratios are OPT/policy (lower is better). Under heavy\n\
         congestion LWD should stay closest to 1 (Theorem 7: at most 2), and\n\
         BPD should trail badly — it starves every port but the cheapest\n\
         (Theorem 5)."
    );
    Ok(())
}
