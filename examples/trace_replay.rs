//! Trace record / replay: capture an MMPP workload to the text format, read
//! it back, and verify two replays of the same trace are bit-identical —
//! the mechanism behind reproducible experiments and CLI interop
//! (`smbm trace-gen`).
//!
//! Run with: `cargo run --release --example trace_replay`

use smbm_core::{Lwd, WorkRunner};
use smbm_sim::{run_work, EngineConfig};
use smbm_switch::{WorkPacket, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = WorkSwitchConfig::contiguous(4, 16)?;
    let scenario = MmppScenario {
        sources: 8,
        slots: 500,
        seed: 2024,
        ..Default::default()
    };
    let trace = scenario.work_trace(&config, &PortMix::Uniform)?;
    println!(
        "generated {} arrivals over {} slots",
        trace.arrivals(),
        trace.slots()
    );

    // Record to the line-oriented text format (what `smbm trace-gen` emits).
    let text = trace.to_text();
    println!("serialized to {} bytes; first lines:", text.len());
    for line in text.lines().take(3) {
        println!("  {line}");
    }

    // Replay from text.
    let replayed: Trace<WorkPacket> = Trace::from_text(&text)?;
    assert_eq!(replayed, trace, "round-trip must be lossless");

    // Two runs over the same trace are identical, slot for slot.
    let mut a = WorkRunner::new(config.clone(), Lwd::new(), 1);
    let mut b = WorkRunner::new(config, Lwd::new(), 1);
    let sa = run_work(&mut a, &trace, &EngineConfig::draining())?;
    let sb = run_work(&mut b, &replayed, &EngineConfig::draining())?;
    assert_eq!(sa, sb);
    println!(
        "replay verified: {} packets transmitted in both runs ({} slots)",
        sa.score, sa.slots
    );
    Ok(())
}
