//! The combined model end-to-end (extension): services with heterogeneous
//! processing costs *and* per-packet revenue, sharing one buffer — the
//! setting the paper's conclusion names as the next step. Shows the WVD
//! hybrid inheriting LWD's work-awareness and MRD's value-awareness.
//!
//! Run with: `cargo run --release --example combined_model`

use smbm_core::{combined_policy_by_name, CombinedPqOpt, CombinedRunner, COMBINED_POLICY_NAMES};
use smbm_sim::{run_combined, EngineConfig};
use smbm_switch::WorkSwitchConfig;
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 service classes with costs 1..8 cycles/packet, 64 buffer slots;
    // every packet carries its own revenue (uniform 1..16), so admission
    // must weigh processing cost against value — the regime where the
    // policies separate.
    let config = WorkSwitchConfig::contiguous(8, 64)?;
    let port_mix = PortMix::Uniform;
    let value_mix = ValueMix::Uniform { max: 16 };

    let scenario = MmppScenario {
        sources: 12,
        slots: 30_000,
        seed: 77,
        ..Default::default()
    };
    let trace = scenario.combined_trace(&config, &port_mix, &value_mix)?;
    println!(
        "combined model: {} arrivals, 8 classes (cost = class, revenue uniform 1..16)",
        trace.arrivals()
    );

    let engine = EngineConfig::draining();
    let mut opt = CombinedPqOpt::new(config.buffer(), config.ports() as u32);
    let opt_score = run_combined(&mut opt, &trace, &engine)?.score;

    println!("{:<8} {:>14} {:>8}", "policy", "revenue", "ratio");
    println!("{:<8} {:>14} {:>8}", "OPT(den)", opt_score, 1.0);
    let mut best: Option<(String, u64)> = None;
    for name in COMBINED_POLICY_NAMES {
        let policy = combined_policy_by_name(name).expect("registry name");
        let mut runner = CombinedRunner::new(config.clone(), policy, 1);
        let score = run_combined(&mut runner, &trace, &engine)?.score;
        runner.switch().check_invariants().expect("invariants hold");
        println!(
            "{:<8} {:>14} {:>8.4}",
            name,
            score,
            opt_score as f64 / score as f64
        );
        if best.as_ref().is_none_or(|&(_, b)| score > b) {
            best = Some((name.to_string(), score));
        }
    }
    let (winner, _) = best.expect("roster non-empty");
    println!(
        "\nbest policy on this mix: {winner} — WVD is built to track the\n\
         better of LWD (work-aware) and MRD (value-aware) across mixes."
    );
    Ok(())
}
