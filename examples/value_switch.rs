//! Heterogeneous values end-to-end: differentiated service classes (think
//! per-SLA revenue per packet) sharing one buffer, compared across all
//! Section IV policies — including the skewed mixes where MRD's balancing
//! matters most.
//!
//! Run with: `cargo run --release --example value_switch`

use smbm_sim::{EngineConfig, FlushPolicy, ValueExperiment};
use smbm_switch::ValueSwitchConfig;
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ports = 8;
    let config = ValueSwitchConfig::new(64, ports)?;

    // Three traffic shapes from Section V-C: uniform values, value==port
    // (each core serves one SLA class), and a high-value-skewed mix.
    let mixes: [(&str, ValueMix); 3] = [
        ("uniform(1..16)", ValueMix::Uniform { max: 16 }),
        ("value==port", ValueMix::EqualsPort),
        (
            "zipf-high(16)",
            ValueMix::ZipfHigh {
                max: 16,
                exponent: 1.2,
            },
        ),
    ];

    for (label, mix) in mixes {
        let scenario = MmppScenario {
            sources: 32,
            slots: 30_000,
            seed: 5,
            ..Default::default()
        };
        let trace = scenario.value_trace(ports, &PortMix::Uniform, &mix)?;
        let mut exp = ValueExperiment::full_roster(config, 1);
        exp.engine = EngineConfig {
            flush: Some(FlushPolicy::every(10_000)),
            drain_at_end: true,
        };
        let report = exp.run(&trace)?;
        println!("== {label}: {} arrivals ==", trace.arrivals());
        println!("{:<8} {:>14} {:>8}", "policy", "value out", "ratio");
        for row in &report.rows {
            println!("{:<8} {:>14} {:>8.3}", row.policy, row.score, row.ratio);
        }
        let mvd = report.row("MVD").expect("in roster").ratio;
        let mrd = report.row("MRD").expect("in roster").ratio;
        println!(
            "-> MRD {:.3} vs MVD {:.3}: chasing value alone costs {:.1}x\n",
            mrd,
            mvd,
            mvd / mrd
        );
    }
    Ok(())
}
