//! Quickstart: build a shared-memory switch, drive it with a few packets by
//! hand, then let the simulator race LWD against the OPT surrogate on bursty
//! traffic.
//!
//! Run with: `cargo run --release --example quickstart`

use smbm_core::{Decision, Lwd, WorkRunner};
use smbm_sim::{run_work, EngineConfig};
use smbm_switch::{PortId, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A switch with 4 output ports requiring 1..=4 cycles per packet and a
    // shared buffer of 8 slots — the paper's "contiguous" configuration.
    let config = WorkSwitchConfig::contiguous(4, 8)?;
    let mut runner = WorkRunner::new(config.clone(), Lwd::new(), 1);

    // Arrival phase: flood the heaviest port, then offer a cheap packet.
    for _ in 0..8 {
        runner.arrival_to(PortId::new(3))?;
    }
    let decision = runner.arrival_to(PortId::new(0))?;
    // The buffer is full of 4-cycle packets; LWD pushes one out to admit the
    // 1-cycle arrival, because queue 3 holds the most outstanding work.
    assert_eq!(decision, Decision::PushOut(PortId::new(3)));
    println!("congested arrival handled by LWD: {decision}");

    // Transmission phase: the cheap packet leaves after one cycle.
    let report = runner.transmission();
    println!(
        "slot complete: {} packet(s) out, {} cycles consumed",
        report.transmitted, report.cycles_used
    );
    runner
        .switch()
        .check_invariants()
        .expect("conservation holds");

    // Now at simulation scale: bursty MMPP traffic, LWD vs the OPT yardstick.
    let scenario = MmppScenario {
        sources: 12,
        slots: 20_000,
        seed: 7,
        ..Default::default()
    };
    let trace = scenario.work_trace(&config, &PortMix::Uniform)?;

    let mut lwd = WorkRunner::new(config.clone(), Lwd::new(), 1);
    let lwd_score = run_work(&mut lwd, &trace, &EngineConfig::draining())?.score;

    let cores = config.ports() as u32; // n * C with C = 1
    let mut opt = smbm_core::WorkPqOpt::new(config.buffer(), cores);
    let opt_score = run_work(&mut opt, &trace, &EngineConfig::draining())?.score;

    let ratio = smbm_core::CompetitiveRatio::new(opt_score, lwd_score);
    println!("LWD on {} bursty arrivals: {ratio}", trace.arrivals());
    assert!(ratio.ratio() < 2.0, "LWD is 2-competitive (Theorem 7)");
    Ok(())
}
