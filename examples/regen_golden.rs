//! Regenerates the constants pinned in `tests/golden.rs`.
//!
//! Run with `cargo run --release --example regen_golden` after an
//! *intentional* behaviour change (tie-break fix, sampler swap, ...) and
//! paste the printed tables into the test, noting the regeneration in the
//! commit message.

use smbm_core::{
    combined_policy_by_name, value_policy_by_name, work_policy_by_name, CombinedRunner,
    ValueRunner, WorkRunner,
};
use smbm_sim::{run_combined, run_value, run_work, EngineConfig};
use smbm_switch::{ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

const SEED: u64 = 0xC0FFEE;

fn main() {
    let work_cfg = WorkSwitchConfig::contiguous(6, 32).unwrap();
    let work_trace = MmppScenario {
        sources: 10,
        slots: 8_000,
        seed: SEED,
        ..Default::default()
    }
    .work_trace(&work_cfg, &PortMix::Uniform)
    .unwrap();
    println!("work model:");
    for name in ["NHST", "NEST", "NHDT", "LQD", "BPD", "BPD1", "LWD"] {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(work_cfg.clone(), policy, 1);
        let score = run_work(&mut runner, &work_trace, &EngineConfig::draining())
            .unwrap()
            .score;
        println!("        (\"{name}\", {score}),");
    }

    let value_cfg = ValueSwitchConfig::new(32, 6).unwrap();
    let value_trace = MmppScenario {
        sources: 24,
        slots: 8_000,
        seed: SEED,
        ..Default::default()
    }
    .value_trace(6, &PortMix::Uniform, &ValueMix::Uniform { max: 12 })
    .unwrap();
    println!("value model:");
    for name in ["GREEDY", "NEST-V", "NHST-V", "LQD", "MVD", "MVD1", "MRD"] {
        let policy = value_policy_by_name(name).unwrap();
        let mut runner = ValueRunner::new(value_cfg, policy, 1);
        let score = run_value(&mut runner, &value_trace, &EngineConfig::draining())
            .unwrap()
            .score;
        println!("        (\"{name}\", {score}),");
    }

    let combined_trace = MmppScenario {
        sources: 10,
        slots: 8_000,
        seed: SEED,
        ..Default::default()
    }
    .combined_trace(&work_cfg, &PortMix::Uniform, &ValueMix::Uniform { max: 12 })
    .unwrap();
    println!("combined model:");
    for name in ["GREEDY", "LQD", "LWD", "MVD-D", "WVD"] {
        let policy = combined_policy_by_name(name).unwrap();
        let mut runner = CombinedRunner::new(work_cfg.clone(), policy, 1);
        let score = run_combined(&mut runner, &combined_trace, &EngineConfig::draining())
            .unwrap()
            .score;
        println!("        (\"{name}\", {score}),");
    }
}
