//! Root package holding the workspace examples and integration tests.
