//! Golden regression tests: every policy's exact score on a fixed seeded
//! trace, across all three models. Simulations are fully deterministic, so
//! any behavioural drift in a policy, queue structure, sampler, or the
//! engine shows up here as an exact-score mismatch — even when all
//! property-based invariants still pass.
//!
//! If a change *intentionally* alters behaviour (e.g. a tie-break fix),
//! regenerate these constants and say so in the commit: the test is a
//! tripwire, not a spec.

use smbm_core::{
    combined_policy_by_name, value_policy_by_name, work_policy_by_name, CombinedRunner,
    ValueRunner, WorkRunner,
};
use smbm_sim::{run_combined, run_value, run_work, EngineConfig};
use smbm_switch::{ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

const SEED: u64 = 0xC0FFEE;

#[test]
fn work_model_scores_are_bit_stable() {
    let golden: &[(&str, u64)] = &[
        ("NHST", 17544),
        ("NEST", 16867),
        ("NHDT", 16059),
        ("LQD", 17295),
        ("BPD", 13075),
        ("BPD1", 16680),
        ("LWD", 17741),
    ];
    let cfg = WorkSwitchConfig::contiguous(6, 32).unwrap();
    let trace = MmppScenario {
        sources: 10,
        slots: 8_000,
        seed: SEED,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    for &(name, expected) in golden {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let score = run_work(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score;
        assert_eq!(score, expected, "{name} drifted");
    }
}

#[test]
fn value_model_scores_are_bit_stable() {
    let golden: &[(&str, u64)] = &[
        ("GREEDY", 286505),
        ("NEST-V", 310535),
        ("NHST-V", 305210),
        ("LQD", 434772),
        ("MVD", 431406),
        ("MVD1", 432659),
        ("MRD", 435460),
    ];
    let cfg = ValueSwitchConfig::new(32, 6).unwrap();
    let trace = MmppScenario {
        sources: 24,
        slots: 8_000,
        seed: SEED,
        ..Default::default()
    }
    .value_trace(6, &PortMix::Uniform, &ValueMix::Uniform { max: 12 })
    .unwrap();
    for &(name, expected) in golden {
        let policy = value_policy_by_name(name).unwrap();
        let mut runner = ValueRunner::new(cfg, policy, 1);
        let score = run_value(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score;
        assert_eq!(score, expected, "{name} drifted");
    }
}

#[test]
fn combined_model_scores_are_bit_stable() {
    let golden: &[(&str, u64)] = &[
        ("GREEDY", 53033),
        ("LQD", 150576),
        ("LWD", 151470),
        ("MVD-D", 135219),
        ("WVD", 152204),
    ];
    let cfg = WorkSwitchConfig::contiguous(6, 32).unwrap();
    let trace = MmppScenario {
        sources: 10,
        slots: 8_000,
        seed: SEED,
        ..Default::default()
    }
    .combined_trace(&cfg, &PortMix::Uniform, &ValueMix::Uniform { max: 12 })
    .unwrap();
    for &(name, expected) in golden {
        let policy = combined_policy_by_name(name).unwrap();
        let mut runner = CombinedRunner::new(cfg.clone(), policy, 1);
        let score = run_combined(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score;
        assert_eq!(score, expected, "{name} drifted");
    }
}
