//! Golden regression tests: every policy's exact score on a fixed seeded
//! trace, across all three models. Simulations are fully deterministic, so
//! any behavioural drift in a policy, queue structure, sampler, or the
//! engine shows up here as an exact-score mismatch — even when all
//! property-based invariants still pass.
//!
//! If a change *intentionally* alters behaviour (e.g. a tie-break fix),
//! regenerate these constants and say so in the commit: the test is a
//! tripwire, not a spec.

use smbm_core::{
    combined_policy_by_name, value_policy_by_name, work_policy_by_name, CombinedRunner,
    ValueRunner, WorkRunner,
};
use smbm_sim::{run_combined, run_value, run_work, EngineConfig};
use smbm_switch::{ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

const SEED: u64 = 0xC0FFEE;

#[test]
fn work_model_scores_are_bit_stable() {
    let golden: &[(&str, u64)] = &[
        ("NHST", 17631),
        ("NEST", 16947),
        ("NHDT", 16062),
        ("LQD", 17383),
        ("BPD", 13097),
        ("BPD1", 16733),
        ("LWD", 17842),
    ];
    let cfg = WorkSwitchConfig::contiguous(6, 32).unwrap();
    let trace = MmppScenario {
        sources: 10,
        slots: 8_000,
        seed: SEED,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    for &(name, expected) in golden {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let score = run_work(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score;
        assert_eq!(score, expected, "{name} drifted");
    }
}

#[test]
fn value_model_scores_are_bit_stable() {
    let golden: &[(&str, u64)] = &[
        ("GREEDY", 287616),
        ("NEST-V", 310237),
        ("NHST-V", 304194),
        ("LQD", 434948),
        ("MVD", 431290),
        ("MVD1", 432813),
        ("MRD", 435528),
    ];
    let cfg = ValueSwitchConfig::new(32, 6).unwrap();
    let trace = MmppScenario {
        sources: 24,
        slots: 8_000,
        seed: SEED,
        ..Default::default()
    }
    .value_trace(6, &PortMix::Uniform, &ValueMix::Uniform { max: 12 })
    .unwrap();
    for &(name, expected) in golden {
        let policy = value_policy_by_name(name).unwrap();
        let mut runner = ValueRunner::new(cfg, policy, 1);
        let score = run_value(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score;
        assert_eq!(score, expected, "{name} drifted");
    }
}

#[test]
fn combined_model_scores_are_bit_stable() {
    let golden: &[(&str, u64)] = &[
        ("GREEDY", 52963),
        ("LQD", 152926),
        ("LWD", 153407),
        ("MVD-D", 134681),
        ("WVD", 154188),
    ];
    let cfg = WorkSwitchConfig::contiguous(6, 32).unwrap();
    let trace = MmppScenario {
        sources: 10,
        slots: 8_000,
        seed: SEED,
        ..Default::default()
    }
    .combined_trace(&cfg, &PortMix::Uniform, &ValueMix::Uniform { max: 12 })
    .unwrap();
    for &(name, expected) in golden {
        let policy = combined_policy_by_name(name).unwrap();
        let mut runner = CombinedRunner::new(cfg.clone(), policy, 1);
        let score = run_combined(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score;
        assert_eq!(score, expected, "{name} drifted");
    }
}
