//! Chaos suite: fault injection against the live datapath.
//!
//! Everything here runs under a `VirtualClock`, so fault firing is keyed on
//! deterministic slot counts, never wall time. The invariant under test is
//! packet conservation across failures: every packet a producer hands to the
//! datapath ends the run as exactly one of transmitted, policy drop,
//! backpressure drop, or shard-failure drop — no packet is silently lost to
//! a panic, a restart, or an abandoned shard.

use smbm_core::{work_policy_by_name, WorkRunner};
use smbm_runtime::{
    run_loadgen, Fault, FaultKind, FaultPlan, IngestMode, LoadgenConfig, Model, RuntimeBuilder,
    RuntimeConfig, RuntimeReport, ShardConfig, SupervisionConfig, VirtualClock, WorkService,
};
use smbm_switch::{WorkPacket, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix};

fn trace_slots(slots: usize, seed: u64) -> Vec<Vec<WorkPacket>> {
    let cfg = WorkSwitchConfig::contiguous(6, 48).unwrap();
    MmppScenario {
        sources: 20,
        slots,
        seed,
        ..MmppScenario::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap()
    .as_slots()
    .to_vec()
}

/// One lockstep LWD shard over per-slot bursts, with faults armed and an
/// immediate (no-backoff) supervisor so tests stay fast.
fn chaos_lockstep(faults: FaultPlan, budget: u32, slots: Vec<Vec<WorkPacket>>) -> RuntimeReport {
    let mut b = RuntimeBuilder::new(RuntimeConfig {
        ring_capacity: 8,
        shard: ShardConfig {
            mode: IngestMode::Lockstep,
            flush: None,
            drain_at_end: true,
        },
        record_metrics: false,
        faults,
        supervision: SupervisionConfig::immediate(budget),
        ..RuntimeConfig::default()
    });
    let id = b.add_shard(|| {
        let cfg = WorkSwitchConfig::contiguous(6, 48).unwrap();
        let policy = work_policy_by_name("LWD").unwrap();
        WorkService::new(WorkRunner::new(cfg, policy, 2))
    });
    b.add_producer(id, move |handle| {
        for burst in slots {
            if !handle.send(burst) {
                break;
            }
        }
    });
    b.run(|_| VirtualClock::new())
}

fn panic_at(slot: u64) -> FaultPlan {
    FaultPlan::scripted(vec![Fault {
        shard: 0,
        at_slot: slot,
        kind: FaultKind::Panic,
    }])
}

/// A panic mid-trace restarts the shard within budget, and the run is
/// bit-for-bit repeatable: the replacement shard resumes the ring where the
/// dead incarnation left it, so admissions — and therefore every counter and
/// the objective — are a pure function of the trace and the fault plan.
#[test]
fn panic_restart_is_deterministic_and_conserves_packets() {
    let slots = trace_slots(2_000, 42);
    let total: u64 = slots.iter().map(|s| s.len() as u64).sum();
    let run = || chaos_lockstep(panic_at(100), 3, slots.clone());

    let first = run();
    assert_eq!(first.shard_panics, 1, "exactly one incarnation died");
    assert_eq!(first.restarts(), 1);
    assert_eq!(first.shards_gave_up(), 0);
    assert_eq!(first.lost_packets(), 0, "no producer saw a closed ring");
    assert!(first.shards[0].error.is_none());

    let c = first.counters();
    assert_eq!(c.arrived(), total, "every generated packet was ingested");
    assert_eq!(c.dropped_backpressure(), 0);
    assert_eq!(
        c.dropped_shard_failure(),
        0,
        "restart preserved the backlog"
    );
    c.check_conservation(0).unwrap();
    c.check_value_conservation(0).unwrap();

    let second = run();
    assert_eq!(second.counters(), c, "chaos run must be reproducible");
    assert_eq!(second.score(), first.score());
    assert_eq!(second.restarts(), first.restarts());
}

/// Each panic consumes one restart; the budget bounds how many incarnations
/// a shard may burn before the supervisor abandons it.
#[test]
fn repeated_panics_burn_the_restart_budget_one_by_one() {
    let slots = trace_slots(1_000, 9);
    let plan = FaultPlan::scripted(vec![
        Fault {
            shard: 0,
            at_slot: 50,
            kind: FaultKind::Panic,
        },
        Fault {
            shard: 0,
            at_slot: 200,
            kind: FaultKind::Panic,
        },
    ]);
    let report = chaos_lockstep(plan, 3, slots.clone());
    assert_eq!(report.shard_panics, 2);
    assert_eq!(report.restarts(), 2);
    assert_eq!(report.shards_gave_up(), 0);
    let total: u64 = slots.iter().map(|s| s.len() as u64).sum();
    assert_eq!(report.counters().arrived(), total);
    report.counters().check_conservation(0).unwrap();
}

/// With the budget exhausted the supervisor closes the shard's rings and
/// accounts the entire backlog — everything still queued, plus everything
/// the producer could no longer hand over — as shard-failure drops, so
/// conservation closes even for an abandoned shard.
#[test]
fn exhausted_budget_accounts_the_whole_backlog_as_shard_failure() {
    let slots = trace_slots(500, 3);
    let report = chaos_lockstep(panic_at(0), 0, slots);
    let shard = &report.shards[0];
    assert!(shard.gave_up);
    assert_eq!(shard.restarts, 0);
    assert!(shard.error.is_none(), "give-up is supervised, not an error");

    let c = report.counters();
    assert_eq!(c.transmitted(), 0, "the shard died before serving anything");
    assert_eq!(c.arrived(), c.dropped_shard_failure());
    assert!(c.dropped_shard_failure() > 0);
    c.check_conservation(0).unwrap();
    c.check_value_conservation(0).unwrap();
}

/// A stall fault freezes the whole pipeline — no ingest, no transmission —
/// so it may only delay the run: final counters and score are identical to
/// a fault-free run over the same trace, with the burned cycles visible.
#[test]
fn stall_fault_delays_without_changing_the_outcome() {
    let slots = trace_slots(800, 17);
    let baseline = chaos_lockstep(FaultPlan::none(), 0, slots.clone());
    let stalled = chaos_lockstep(
        FaultPlan::scripted(vec![Fault {
            shard: 0,
            at_slot: 100,
            kind: FaultKind::Stall { cycles: 5_000 },
        }]),
        0,
        slots,
    );
    assert_eq!(stalled.shard_panics, 0);
    assert_eq!(stalled.counters(), baseline.counters());
    assert_eq!(stalled.score(), baseline.score());
    assert!(
        stalled.shards[0].cycles >= baseline.shards[0].cycles + 5_000,
        "the stall must show up as burned cycles"
    );
}

/// In a multi-shard run, per-shard rows say exactly which shard died, how
/// often it restarted, and how many packets its ring held — healthy shards
/// stay untouched.
#[test]
fn multi_shard_report_names_the_dead_shard() {
    let mut b = RuntimeBuilder::new(RuntimeConfig {
        ring_capacity: 8,
        shard: ShardConfig {
            mode: IngestMode::Lockstep,
            flush: None,
            drain_at_end: true,
        },
        record_metrics: false,
        faults: FaultPlan::scripted(vec![Fault {
            shard: 1,
            at_slot: 25,
            kind: FaultKind::Panic,
        }]),
        supervision: SupervisionConfig::immediate(2),
        ..RuntimeConfig::default()
    });
    for seed in [1u64, 2] {
        let id = b.add_shard(|| {
            let cfg = WorkSwitchConfig::contiguous(6, 48).unwrap();
            let policy = work_policy_by_name("LWD").unwrap();
            WorkService::new(WorkRunner::new(cfg, policy, 2))
        });
        let slots = trace_slots(400, seed);
        b.add_producer(id, move |handle| {
            for burst in slots {
                if !handle.send(burst) {
                    break;
                }
            }
        });
    }
    let report = b.run(|_| VirtualClock::new());

    assert_eq!(report.shards.len(), 2);
    assert_eq!(report.shards[0].shard, 0);
    assert_eq!(report.shards[1].shard, 1);
    assert_eq!(report.shards[0].restarts, 0, "healthy shard untouched");
    assert!(!report.shards[0].gave_up);
    assert_eq!(report.shards[1].restarts, 1, "shard 1 died and came back");
    assert!(!report.shards[1].gave_up);
    assert_eq!(report.shard_panics, 1);
    report.counters().check_conservation(0).unwrap();
}

/// Saturating ingress while producers run lossy forces bounded rings to
/// fill and bounce batches: the rejections must land in the backpressure
/// tally — and only there — with conservation intact.
#[test]
fn saturated_ingress_surfaces_as_backpressure_not_loss() {
    let config = LoadgenConfig {
        model: Model::Work,
        policy: "lwd".to_owned(),
        ports: 4,
        buffer: 16,
        slots: 400,
        sources: 10,
        batch: 16,
        ring_capacity: 2,
        lossy: true,
        faults: FaultPlan::scripted(vec![Fault {
            shard: 0,
            at_slot: 0,
            kind: FaultKind::SaturateIngress { cycles: 100_000 },
        }]),
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&config).unwrap();
    let c = report.counters();
    assert_eq!(report.runtime.shard_panics, 0);
    assert!(
        c.dropped_backpressure() > 0,
        "a saturated ring must bounce batches as backpressure"
    );
    assert_eq!(c.dropped_shard_failure(), 0);
    assert_eq!(
        report.runtime.lost_packets(),
        0,
        "lossy sends are counted, not lost"
    );
    c.check_conservation(0).unwrap();
}

/// Random fault plans are a pure function of their seed, and whatever plan
/// a seed yields, the datapath conserves packets under it.
#[test]
fn random_fault_plans_are_reproducible_and_survivable() {
    let a = FaultPlan::random(0xC4A05, 2, 1_000);
    let b = FaultPlan::random(0xC4A05, 2, 1_000);
    assert_eq!(a.faults(), b.faults(), "same seed, same plan");
    assert!(!a.is_empty());

    let config = LoadgenConfig {
        model: Model::Work,
        policy: "lwd".to_owned(),
        ports: 4,
        buffer: 16,
        shards: 2,
        slots: 1_000,
        sources: 10,
        batch: 16,
        faults: a,
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&config).unwrap();
    report.counters().check_conservation(0).unwrap();
}

/// Acceptance gate from the issue: a 4-shard chaos run — panics injected,
/// restarts consumed — still sustains at least 1M packets/sec with zero
/// conservation violations. Heavyweight; run via `cargo test -- --ignored`.
#[test]
#[ignore = "throughput gate; run with --ignored on quiet hardware"]
fn chaos_loadgen_sustains_a_million_packets_per_second() {
    let config = LoadgenConfig {
        shards: 4,
        slots: 40_000,
        sources: 200,
        faults: FaultPlan::scripted(vec![
            Fault {
                shard: 1,
                at_slot: 5_000,
                kind: FaultKind::Panic,
            },
            Fault {
                shard: 3,
                at_slot: 9_000,
                kind: FaultKind::Panic,
            },
        ]),
        ..LoadgenConfig::default()
    };
    let report = run_loadgen(&config).unwrap();
    assert_eq!(report.runtime.restarts(), 2);
    assert_eq!(report.runtime.shards_gave_up(), 0);
    report.counters().check_conservation(0).unwrap();
    assert!(
        report.processed_per_sec() >= 1_000_000.0,
        "sustained only {:.0} packets/sec",
        report.processed_per_sec()
    );
}
