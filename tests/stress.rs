//! Large-configuration stress tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored`): exercise the structures at
//! paper-scale parameters and check the invariants still hold.

use smbm_core::{work_policy_by_name, WorkPqOpt, WorkRunner};
use smbm_sim::{run_work, EngineConfig, FlushPolicy};
use smbm_switch::WorkSwitchConfig;
use smbm_traffic::{MmppScenario, PortMix, Summarize};

#[test]
#[ignore = "multi-second stress run; use cargo test --release -- --ignored"]
fn large_switch_full_roster_stress() {
    let cfg = WorkSwitchConfig::contiguous(64, 4096).unwrap();
    let trace = MmppScenario {
        sources: 100,
        slots: 100_000,
        seed: 61,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    let stats = trace.stats();
    assert!(stats.arrivals > 1_000_000, "stress trace too small");
    let engine = EngineConfig {
        flush: Some(FlushPolicy::every(20_000)),
        drain_at_end: true,
    };
    let mut opt = WorkPqOpt::new(cfg.buffer(), cfg.ports() as u32);
    let opt_score = run_work(&mut opt, &trace, &engine).unwrap().score;
    opt.check_invariants().unwrap();
    for name in smbm_core::WORK_POLICY_NAMES {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let score = run_work(&mut runner, &trace, &engine).unwrap().score;
        runner.switch().check_invariants().unwrap();
        assert!(score > 0 && score <= opt_score + opt_score / 100, "{name}");
    }
}

#[test]
#[ignore = "multi-second stress run; use cargo test --release -- --ignored"]
fn long_horizon_conservation_stress() {
    // 1M slots at modest size: counters and occupancy must stay exact.
    let cfg = WorkSwitchConfig::contiguous(8, 64).unwrap();
    let trace = MmppScenario {
        sources: 12,
        slots: 1_000_000,
        seed: 62,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    let policy = work_policy_by_name("LWD").unwrap();
    let mut runner = WorkRunner::new(cfg, policy, 1);
    run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
    runner.switch().check_invariants().unwrap();
    let c = runner.switch().counters();
    assert_eq!(c.arrived() as usize, trace.arrivals());
    assert_eq!(c.transmitted(), c.admitted() - c.pushed_out());
}
