//! Robustness tests: a hostile "chaos" policy returning malformed decisions
//! must be rejected loudly by the validated switch layer, never silently
//! corrupting an experiment; plus analytic capacity bounds no run may
//! exceed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use smbm_core::{Decision, ValuePolicy, ValueRunner, WorkPolicy, WorkRunner};
use smbm_switch::{
    AdmitError, PortId, ValuePacket, ValueSwitch, ValueSwitchConfig, WorkPacket, WorkSwitch,
    WorkSwitchConfig,
};

/// A policy that answers with arbitrary (frequently invalid) decisions.
#[derive(Debug)]
struct ChaosWork {
    rng: StdRng,
}

impl WorkPolicy for ChaosWork {
    fn name(&self) -> &str {
        "CHAOS"
    }

    fn decide(&mut self, switch: &WorkSwitch, _pkt: WorkPacket) -> Decision {
        match self.rng.random_range(0..4u8) {
            0 => Decision::Accept, // invalid when full
            1 => Decision::Drop,
            2 => Decision::PushOut(PortId::new(self.rng.random_range(0..switch.ports()))),
            _ => Decision::PushOut(PortId::new(switch.ports() + 7)), // bogus port
        }
    }
}

#[derive(Debug)]
struct ChaosValue {
    rng: StdRng,
}

impl ValuePolicy for ChaosValue {
    fn name(&self) -> &str {
        "CHAOS"
    }

    fn decide(&mut self, switch: &ValueSwitch, _pkt: ValuePacket) -> Decision {
        match self.rng.random_range(0..4u8) {
            0 => Decision::Accept,
            1 => Decision::Drop,
            2 => Decision::PushOut(PortId::new(self.rng.random_range(0..switch.ports()))),
            _ => Decision::PushOut(PortId::new(switch.ports() + 7)),
        }
    }
}

#[test]
fn chaos_work_policy_errors_cleanly_and_preserves_invariants() {
    let cfg = WorkSwitchConfig::contiguous(3, 6).unwrap();
    let mut runner = WorkRunner::new(
        cfg,
        ChaosWork {
            rng: StdRng::seed_from_u64(1),
        },
        1,
    );
    let mut errors = 0;
    let mut applied = 0;
    for i in 0..500u64 {
        let port = PortId::new((i % 3) as usize);
        match runner.arrival_to(port) {
            Ok(_) => applied += 1,
            Err(
                AdmitError::BufferFull
                | AdmitError::UnknownPort { .. }
                | AdmitError::EmptyQueue { .. },
            ) => errors += 1,
            Err(other) => panic!("unexpected error class: {other}"),
        }
        // The switch must stay internally consistent no matter what the
        // policy attempted. (A failed arrival is not recorded at all.)
        runner.switch().check_invariants().unwrap();
        if i % 5 == 4 {
            runner.transmission();
            runner.end_slot();
        }
    }
    assert!(errors > 0, "chaos never produced an invalid decision");
    assert!(applied > 0, "chaos never produced a valid decision");
}

#[test]
fn chaos_value_policy_errors_cleanly_and_preserves_invariants() {
    let cfg = ValueSwitchConfig::new(6, 3).unwrap();
    let mut runner = ValueRunner::new(
        cfg,
        ChaosValue {
            rng: StdRng::seed_from_u64(2),
        },
        1,
    );
    let mut errors = 0;
    for i in 0..500u64 {
        let pkt = ValuePacket::new(
            PortId::new((i % 3) as usize),
            smbm_switch::Value::new(1 + i % 9),
        );
        if runner.arrival(pkt).is_err() {
            errors += 1;
        }
        runner.switch().check_invariants().unwrap();
        if i % 5 == 4 {
            runner.transmission();
            runner.end_slot();
        }
    }
    assert!(errors > 0);
}

#[test]
fn engine_propagates_policy_errors() {
    use smbm_sim::{run_work, EngineConfig};
    use smbm_traffic::Trace;
    let cfg = WorkSwitchConfig::contiguous(2, 2).unwrap();
    let mut runner = WorkRunner::new(
        cfg.clone(),
        ChaosWork {
            rng: StdRng::seed_from_u64(9),
        },
        1,
    );
    let mut trace = Trace::new();
    // Enough arrivals that chaos is guaranteed to emit an invalid decision.
    trace.push_slot(vec![
        smbm_switch::WorkPacket::new(
            PortId::new(0),
            smbm_switch::Work::new(1)
        );
        64
    ]);
    let result = run_work(&mut runner, &trace, &EngineConfig::draining());
    assert!(result.is_err(), "chaos run unexpectedly succeeded");
    runner.switch().check_invariants().unwrap();
}

#[test]
fn throughput_never_exceeds_analytic_capacity() {
    // Per-port capacity over T slots at speedup C: at most
    // ceil(T*C / w_i) completions, plus nothing — check the aggregate bound
    // for every policy on a hot trace.
    use smbm_core::work_policy_by_name;
    use smbm_sim::{run_work, EngineConfig};
    use smbm_traffic::{MmppScenario, PortMix};

    let cfg = WorkSwitchConfig::contiguous(5, 20).unwrap();
    let speedup = 2u32;
    let trace = MmppScenario {
        sources: 24,
        slots: 2_000,
        seed: 3,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    for name in smbm_core::WORK_POLICY_NAMES {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, speedup);
        let summary = run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        let cap: u64 = cfg
            .works()
            .iter()
            .map(|w| (summary.slots * u64::from(speedup)).div_ceil(w.as_u64()))
            .sum();
        assert!(
            summary.score <= cap,
            "{name}: {} transmitted exceeds capacity {cap}",
            summary.score
        );
        // And it can never exceed what was offered.
        assert!(summary.score <= trace.arrivals() as u64);
    }
}

#[test]
fn value_throughput_never_exceeds_offered_value() {
    use smbm_core::value_policy_by_name;
    use smbm_sim::{run_value, EngineConfig};
    use smbm_traffic::{MmppScenario, PortMix, Summarize, ValueMix};

    let cfg = ValueSwitchConfig::new(20, 5).unwrap();
    let trace = MmppScenario {
        sources: 24,
        slots: 2_000,
        seed: 4,
        ..Default::default()
    }
    .value_trace(5, &PortMix::Uniform, &ValueMix::Uniform { max: 9 })
    .unwrap();
    let offered = trace.stats().total_weight;
    for name in smbm_core::VALUE_POLICY_NAMES {
        let policy = value_policy_by_name(name).unwrap();
        let mut runner = ValueRunner::new(cfg, policy, 1);
        let summary = run_value(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        assert!(
            summary.score <= offered,
            "{name}: transmitted value {} exceeds offered {offered}",
            summary.score
        );
    }
}
