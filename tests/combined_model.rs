//! Integration + property tests of the combined model (extension):
//! invariants under bursty traffic, degeneration to the paper's two models,
//! and OPT dominance.

use proptest::prelude::*;

use smbm_core::{
    combined_policy_by_name, CombinedPqOpt, CombinedRunner, Wvd, COMBINED_POLICY_NAMES,
};
use smbm_sim::{run_combined, EngineConfig};
use smbm_switch::{CombinedPacket, PortId, Value, Work, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

#[test]
fn all_policies_preserve_invariants_under_bursty_traffic() {
    let cfg = WorkSwitchConfig::contiguous(6, 24).unwrap();
    let trace = MmppScenario {
        sources: 16,
        slots: 5_000,
        seed: 41,
        ..Default::default()
    }
    .combined_trace(&cfg, &PortMix::Uniform, &ValueMix::Uniform { max: 9 })
    .unwrap();
    for name in COMBINED_POLICY_NAMES {
        let policy = combined_policy_by_name(name).unwrap();
        let mut runner = CombinedRunner::new(cfg.clone(), policy, 1);
        let summary = run_combined(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        runner
            .switch()
            .check_invariants()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(summary.score > 0, "{name} transmitted no value");
        assert_eq!(runner.switch().occupancy(), 0, "{name}: drain incomplete");
    }
}

#[test]
fn density_opt_dominates_policies_on_bursty_traffic() {
    let cfg = WorkSwitchConfig::contiguous(6, 24).unwrap();
    let trace = MmppScenario {
        sources: 16,
        slots: 5_000,
        seed: 42,
        ..Default::default()
    }
    .combined_trace(&cfg, &PortMix::Uniform, &ValueMix::Uniform { max: 9 })
    .unwrap();
    let mut opt = CombinedPqOpt::new(cfg.buffer(), cfg.ports() as u32);
    let opt_score = run_combined(&mut opt, &trace, &EngineConfig::draining())
        .unwrap()
        .score;
    opt.check_invariants().unwrap();
    for name in COMBINED_POLICY_NAMES {
        let policy = combined_policy_by_name(name).unwrap();
        let mut runner = CombinedRunner::new(cfg.clone(), policy, 1);
        let score = run_combined(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score;
        assert!(
            score <= opt_score,
            "{name} ({score}) beat the density OPT surrogate ({opt_score})"
        );
    }
}

#[test]
fn wvd_beats_value_blind_and_length_blind_under_heterogeneous_load() {
    // Heavy cheap traffic + sparse valuable traffic, heterogeneous works:
    // the regime WVD is built for. It must not lose to plain LWD or LQD.
    let cfg = WorkSwitchConfig::contiguous(8, 32).unwrap();
    let weights: Vec<f64> = (1..=8).map(|v| 1.0 / v as f64).collect();
    let trace = MmppScenario {
        sources: 24,
        slots: 30_000,
        seed: 43,
        ..Default::default()
    }
    .combined_trace(&cfg, &PortMix::Weighted(weights), &ValueMix::EqualsPort)
    .unwrap();
    let score = |name: &str| {
        let policy = combined_policy_by_name(name).unwrap();
        let mut runner = CombinedRunner::new(cfg.clone(), policy, 1);
        run_combined(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score
    };
    let wvd = score("WVD");
    let lwd = score("LWD");
    let lqd = score("LQD");
    assert!(
        wvd as f64 >= 0.99 * lwd as f64,
        "WVD {wvd} clearly lost to LWD {lwd}"
    );
    assert!(
        wvd as f64 >= 0.99 * lqd as f64,
        "WVD {wvd} clearly lost to LQD {lqd}"
    );
}

fn tiny_pattern() -> impl Strategy<Value = (usize, Vec<(usize, u64)>)> {
    (2usize..=3).prop_flat_map(|ports| {
        (
            Just(ports),
            proptest::collection::vec((0usize..ports, 1u64..=9), 1..50),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// WVD with all-equal values takes the same accept/reject trajectory as
    /// combined-LWD (its `a_j` factor cancels).
    #[test]
    fn wvd_equals_lwd_on_constant_values((ports, pattern) in tiny_pattern()) {
        let cfg = WorkSwitchConfig::contiguous(ports as u32, ports * 2).unwrap();
        let mut wvd = CombinedRunner::new(cfg.clone(), Wvd::new(), 1);
        let mut lwd = CombinedRunner::new(
            cfg.clone(),
            smbm_core::LwdCombined::new(),
            1,
        );
        for (i, &(p, _)) in pattern.iter().enumerate() {
            let port = PortId::new(p);
            let pkt = CombinedPacket::new(port, cfg.work(port), Value::new(4));
            let a = wvd.arrival(pkt).unwrap();
            let b = lwd.arrival(pkt).unwrap();
            prop_assert_eq!(a.admits(), b.admits(), "diverged at arrival {}", i);
            if i % 4 == 3 {
                wvd.transmission();
                lwd.transmission();
                wvd.end_slot();
                lwd.end_slot();
            }
        }
        for p in 0..ports {
            prop_assert_eq!(
                wvd.switch().queue(PortId::new(p)).len(),
                lwd.switch().queue(PortId::new(p)).len()
            );
        }
    }

    /// Conservation and occupancy bounds hold for every combined policy on
    /// random arrival patterns.
    #[test]
    fn combined_invariants_on_random_patterns((ports, pattern) in tiny_pattern()) {
        let cfg = WorkSwitchConfig::contiguous(ports as u32, ports + 1).unwrap();
        for name in COMBINED_POLICY_NAMES {
            let policy = combined_policy_by_name(name).unwrap();
            let mut runner = CombinedRunner::new(cfg.clone(), policy, 1);
            for (i, &(p, v)) in pattern.iter().enumerate() {
                let port = PortId::new(p);
                let pkt = CombinedPacket::new(port, cfg.work(port), Value::new(v));
                runner.arrival(pkt).unwrap();
                if i % 3 == 2 {
                    runner.transmission();
                    runner.end_slot();
                }
            }
            runner
                .switch()
                .check_invariants()
                .map_err(|e| TestCaseError::fail(format!("{name}: {e}")))?;
        }
    }

    /// The density OPT surrogate never loses value it has admitted: its
    /// transmitted + resident value equals admitted minus pushed-out value
    /// — checked via the conservation law after random offers.
    #[test]
    fn combined_opt_conserves((ports, pattern) in tiny_pattern()) {
        let cfg = WorkSwitchConfig::contiguous(ports as u32, ports + 1).unwrap();
        let mut opt = CombinedPqOpt::new(ports + 1, 2);
        for (i, &(p, v)) in pattern.iter().enumerate() {
            let port = PortId::new(p);
            opt.offer(CombinedPacket::new(port, cfg.work(port), Value::new(v)));
            if i % 3 == 2 {
                opt.transmission();
            }
        }
        opt.check_invariants()
            .map_err(TestCaseError::fail)?;
    }
}

#[test]
fn work_mismatch_is_rejected() {
    let cfg = WorkSwitchConfig::contiguous(2, 4).unwrap();
    let mut runner = CombinedRunner::new(cfg, smbm_core::GreedyCombined::new(), 1);
    let bad = CombinedPacket::new(PortId::new(0), Work::new(9), Value::new(1));
    assert!(runner.arrival(bad).is_err());
    runner.switch().check_invariants().unwrap();
}
