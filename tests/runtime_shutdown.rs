//! Shutdown robustness: a producer dying mid-run must not wedge the
//! datapath. The shard drains whatever was already queued, the dead
//! producer's partial tallies survive, and every thread joins.

use std::time::{Duration, Instant};

use smbm_core::{Lwd, WorkRunner};
use smbm_runtime::{RuntimeBuilder, RuntimeConfig, ShardConfig, VirtualClock, WorkService};
use smbm_switch::{PortId, Work, WorkPacket, WorkSwitchConfig};

fn burst(port: usize) -> Vec<WorkPacket> {
    vec![WorkPacket::new(PortId::new(port), Work::new(port as u32 + 1)); 4]
}

#[test]
fn producer_panic_mid_run_drains_and_joins() {
    let started = Instant::now();
    let mut b = RuntimeBuilder::new(RuntimeConfig {
        ring_capacity: 4,
        shard: ShardConfig::freerun(),
        record_metrics: false,
        ..RuntimeConfig::default()
    });
    let id = b.add_shard(|| {
        let cfg = WorkSwitchConfig::contiguous(4, 32).unwrap();
        WorkService::new(WorkRunner::new(cfg, Lwd::new(), 1))
    });
    // One healthy producer and one that panics after its tenth batch.
    b.add_producer(id, |h| {
        for _ in 0..50 {
            assert!(h.send(burst(0)));
        }
    });
    b.add_producer(id, |h| {
        for i in 0..50 {
            assert!(h.send(burst(1)));
            if i == 9 {
                panic!("injected producer failure");
            }
        }
    });
    let report = b.run(|_| VirtualClock::new());

    assert_eq!(report.producer_panics(), 1);
    assert_eq!(report.shard_panics, 0);
    let healthy = &report.producers[0];
    let dead = &report.producers[1];
    assert!(!healthy.panicked);
    assert!(dead.panicked);
    assert_eq!(healthy.sent_packets, 200);
    assert_eq!(dead.sent_packets, 40, "partial tallies survive the panic");

    let c = report.counters();
    assert_eq!(c.arrived(), 240, "everything queued reached the switch");
    // Policy drops and push-outs are legitimate under this overload; what
    // drain guarantees is that no admitted packet is still sitting in the
    // buffer, i.e. conservation closes with zero residents.
    assert_eq!(
        c.transmitted() + c.pushed_out(),
        c.admitted(),
        "the shard drained before joining"
    );
    assert!(c.check_conservation(0).is_ok());
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "join took too long — deadlock suspected"
    );
}
