//! Integration tests of the extension policies built beyond the paper's
//! roster: NHDT-W (the executed open problem), AWD(α), and MRD-strict.

use smbm_core::{
    value_policy_by_name, work_policy_by_name, AlphaWd, CappedWork, Lqd, LqdValue, Lwd, Mrd,
    MrdStrict, NhdtW, ValueRunner, WorkRunner,
};
use smbm_sim::{run_value, run_work, EngineConfig};
use smbm_switch::{PortId, ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{adversarial, MmppScenario, PortMix, ValueMix};

#[test]
fn nhdt_w_repairs_theorem3_attack() {
    let c = adversarial::nhdt_lower_bound(64, 512, 4);
    let engine = EngineConfig::horizon_only();
    let mut opt = WorkRunner::new(c.config.clone(), CappedWork::new(c.opt_caps.clone()), 1);
    let opt_score = run_work(&mut opt, &c.trace, &engine).unwrap().score;

    let mut nhdt = WorkRunner::new(c.config.clone(), work_policy_by_name("NHDT").unwrap(), 1);
    let nhdt_score = run_work(&mut nhdt, &c.trace, &engine).unwrap().score;

    let mut nhdt_w = WorkRunner::new(c.config.clone(), NhdtW::new(), 1);
    let nhdt_w_score = run_work(&mut nhdt_w, &c.trace, &engine).unwrap().score;

    let plain_ratio = opt_score as f64 / nhdt_score as f64;
    let work_ratio = opt_score as f64 / nhdt_w_score as f64;
    assert!(plain_ratio > 5.0, "attack too weak: {plain_ratio}");
    assert!(
        work_ratio < plain_ratio / 3.0,
        "NHDT-W ratio {work_ratio} vs NHDT {plain_ratio}"
    );
}

#[test]
fn nhdt_w_holds_up_on_statistical_traffic() {
    let cfg = WorkSwitchConfig::contiguous(8, 64).unwrap();
    let trace = MmppScenario {
        sources: 12,
        slots: 20_000,
        seed: 31,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    let mut plain = WorkRunner::new(cfg.clone(), work_policy_by_name("NHDT").unwrap(), 1);
    let plain_score = run_work(&mut plain, &trace, &EngineConfig::draining())
        .unwrap()
        .score;
    let mut work_aware = WorkRunner::new(cfg, NhdtW::new(), 1);
    let aware_score = run_work(&mut work_aware, &trace, &EngineConfig::draining())
        .unwrap()
        .score;
    assert!(
        aware_score * 100 >= plain_score * 95,
        "NHDT-W regressed: {aware_score} vs {plain_score}"
    );
}

#[test]
fn awd_endpoints_bracket_lqd_and_lwd_scores() {
    let cfg = WorkSwitchConfig::contiguous(8, 64).unwrap();
    let trace = MmppScenario {
        sources: 12,
        slots: 20_000,
        seed: 32,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    let score = |policy: Box<dyn smbm_core::WorkPolicy>| {
        let mut r = WorkRunner::new(cfg.clone(), policy, 1);
        run_work(&mut r, &trace, &EngineConfig::draining())
            .unwrap()
            .score
    };
    let lqd = score(Box::new(Lqd::new()));
    let lwd = score(Box::new(Lwd::new()));
    let awd0 = score(Box::new(AlphaWd::new(0.0)));
    let awd1 = score(Box::new(AlphaWd::new(1.0)));
    assert_eq!(awd0, lqd, "AWD(0) must equal LQD end-to-end");
    assert_eq!(awd1, lwd, "AWD(1) must equal LWD end-to-end");
    assert!(
        lwd >= lqd,
        "LWD should beat LQD under heterogeneous congestion"
    );
}

#[test]
fn mrd_strict_collapses_on_unit_values() {
    let cfg = ValueSwitchConfig::new(16, 4).unwrap();
    let trace = MmppScenario {
        sources: 16,
        slots: 10_000,
        seed: 33,
        ..Default::default()
    }
    .value_trace(4, &PortMix::Uniform, &ValueMix::Uniform { max: 1 })
    .unwrap();
    let mut mrd = ValueRunner::new(cfg, Mrd::new(), 1);
    let mrd_score = run_value(&mut mrd, &trace, &EngineConfig::draining())
        .unwrap()
        .score;
    let mut strict = ValueRunner::new(cfg, MrdStrict::new(), 1);
    let strict_score = run_value(&mut strict, &trace, &EngineConfig::draining())
        .unwrap()
        .score;
    // The strict rule can never push out (all values equal), so it behaves
    // like a greedy policy and loses the balancing advantage. It must not
    // beat the virtual-add MRD.
    assert!(strict_score <= mrd_score);

    // And where it really shows: strict freezes the port mix after the
    // buffer first fills, so a starved port stays starved.
    let mut strict = ValueRunner::new(cfg, MrdStrict::new(), 1);
    for _ in 0..16 {
        strict
            .arrival(smbm_switch::ValuePacket::new(
                PortId::new(0),
                smbm_switch::Value::ONE,
            ))
            .unwrap();
    }
    let d = strict
        .arrival(smbm_switch::ValuePacket::new(
            PortId::new(1),
            smbm_switch::Value::ONE,
        ))
        .unwrap();
    assert_eq!(d, smbm_core::Decision::Drop);
}

#[test]
fn mrd_beats_lqd_on_cheap_heavy_skew() {
    // The regime the paper highlights: cheap classes flood the switch while
    // valuable traffic is sparse; MRD's value-aware shedding protects the
    // valuable queues where LQD's balance does not.
    let ports = 8;
    let cfg = ValueSwitchConfig::new(16, ports).unwrap();
    let weights: Vec<f64> = (1..=ports).map(|v| 1.0 / v as f64).collect();
    let trace = MmppScenario {
        sources: 32,
        slots: 60_000,
        seed: 3,
        ..Default::default()
    }
    .value_trace(ports, &PortMix::Weighted(weights), &ValueMix::EqualsPort)
    .unwrap();
    let mut mrd = ValueRunner::new(cfg, Mrd::new(), 1);
    let mrd_score = run_value(&mut mrd, &trace, &EngineConfig::draining())
        .unwrap()
        .score;
    let mut lqd = ValueRunner::new(cfg, LqdValue::new(), 1);
    let lqd_score = run_value(&mut lqd, &trace, &EngineConfig::draining())
        .unwrap()
        .score;
    assert!(
        mrd_score > lqd_score,
        "MRD {mrd_score} should beat LQD {lqd_score} under cheap-heavy skew"
    );
}

#[test]
fn extension_registry_entries_resolve() {
    for name in ["GREEDY", "NHDT-W", "LWD-MAXLEN", "LWD-MINWORK"] {
        assert!(work_policy_by_name(name).is_some(), "{name}");
    }
    assert!(value_policy_by_name("MRD-STRICT").is_some());
}
