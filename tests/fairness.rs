//! Fairness regression: the paper's motivating claim — complete sharing
//! lets one port monopolize the buffer while push-out policies get fairness
//! *and* utilization — must hold measurably.

use smbm_core::{work_policy_by_name, WorkRunner};
use smbm_sim::{jain_index, max_port_share, run_work, EngineConfig};
use smbm_switch::WorkSwitchConfig;
use smbm_traffic::{MmppScenario, PortMix};

fn hot_port_run(name: &str) -> (u64, f64, f64) {
    let ports = 8usize;
    let cfg = WorkSwitchConfig::homogeneous(ports, 64).unwrap();
    let mut weights = vec![1.0; ports];
    weights[0] = 8.0;
    let trace = MmppScenario {
        sources: 24,
        slots: 15_000,
        seed: 51,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Weighted(weights))
    .unwrap();
    let policy = work_policy_by_name(name).unwrap();
    let mut runner = WorkRunner::new(cfg, policy, 1);
    run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
    let per_port = runner.switch().transmitted_per_port();
    (
        runner.switch().counters().transmitted(),
        jain_index(per_port),
        max_port_share(per_port),
    )
}

#[test]
fn greedy_sharing_lets_the_hot_port_monopolize() {
    let (_, jain, max_share) = hot_port_run("GREEDY");
    assert!(jain < 0.6, "greedy unexpectedly fair: jain {jain}");
    assert!(max_share > 0.4, "hot port share only {max_share}");
}

#[test]
fn push_out_policies_are_fair_and_fast() {
    let (greedy_score, _, _) = hot_port_run("GREEDY");
    for name in ["LQD", "LWD"] {
        let (score, jain, max_share) = hot_port_run(name);
        assert!(jain > 0.9, "{name} unfair: jain {jain}");
        assert!(max_share < 0.25, "{name} hot share {max_share}");
        assert!(
            score > greedy_score,
            "{name} ({score}) did not beat greedy ({greedy_score})"
        );
    }
}

#[test]
fn static_partition_is_fair() {
    let (_, jain, _) = hot_port_run("NEST");
    assert!(jain > 0.9, "NEST unfair: jain {jain}");
}

#[test]
fn per_port_counts_sum_to_total() {
    let ports = 4usize;
    let cfg = WorkSwitchConfig::contiguous(ports as u32, 16).unwrap();
    let trace = MmppScenario {
        sources: 8,
        slots: 3_000,
        seed: 52,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    let policy = work_policy_by_name("LWD").unwrap();
    let mut runner = WorkRunner::new(cfg, policy, 1);
    run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
    let sum: u64 = runner.switch().transmitted_per_port().iter().sum();
    assert_eq!(sum, runner.switch().counters().transmitted());
}
