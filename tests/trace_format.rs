//! Property tests for the trace text format: arbitrary traces round-trip.

use proptest::prelude::*;

use smbm_switch::{PortId, Value, ValuePacket, Work, WorkPacket};
use smbm_traffic::Trace;

fn work_trace_strategy() -> impl Strategy<Value = Trace<WorkPacket>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..10, 1u32..=20), 0..=6),
        0..=8,
    )
    .prop_map(|slots| {
        Trace::from_slots(
            slots
                .into_iter()
                .map(|burst| {
                    burst
                        .into_iter()
                        .map(|(p, w)| WorkPacket::new(PortId::new(p), Work::new(w)))
                        .collect()
                })
                .collect(),
        )
    })
}

fn value_trace_strategy() -> impl Strategy<Value = Trace<ValuePacket>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..10, 1u64..=1_000_000), 0..=6),
        0..=8,
    )
    .prop_map(|slots| {
        Trace::from_slots(
            slots
                .into_iter()
                .map(|burst| {
                    burst
                        .into_iter()
                        .map(|(p, v)| ValuePacket::new(PortId::new(p), Value::new(v)))
                        .collect()
                })
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn work_traces_roundtrip(trace in work_trace_strategy()) {
        let text = trace.to_text();
        let back: Trace<WorkPacket> = Trace::from_text(&text).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn value_traces_roundtrip(trace in value_trace_strategy()) {
        let text = trace.to_text();
        let back: Trace<ValuePacket> = Trace::from_text(&text).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Serialization is line-per-slot, so slot counts survive even for
    /// traces with empty bursts.
    #[test]
    fn slot_structure_is_preserved(trace in work_trace_strategy()) {
        let text = trace.to_text();
        let back: Trace<WorkPacket> = Trace::from_text(&text).unwrap();
        prop_assert_eq!(back.slots(), trace.slots());
        prop_assert_eq!(back.arrivals(), trace.arrivals());
    }

    /// `repeated` multiplies slots and arrivals exactly.
    #[test]
    fn repeat_multiplies(trace in work_trace_strategy(), times in 1usize..4) {
        let slots = trace.slots();
        let arrivals = trace.arrivals();
        let repeated = trace.repeated(times);
        prop_assert_eq!(repeated.slots(), slots * times);
        prop_assert_eq!(repeated.arrivals(), arrivals * times);
    }
}

#[test]
fn corrupted_text_is_rejected_with_line_numbers() {
    let text = "1:2\n2:3 bogus\n";
    let err = Trace::<WorkPacket>::from_text(text).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
}
