//! The Fig. 2 setting as an executable scenario: "maximal processing k = 3,
//! 4 output ports (there are two different ports with the same processing
//! requirement 2 ...), and a shared buffer of size B = 8" — exercising the
//! duplicated-class configurations the model explicitly allows.

use smbm_core::{work_policy_by_name, Decision, Lwd, WorkRunner};
use smbm_sim::{run_work, EngineConfig};
use smbm_switch::{PortId, Work, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix};

/// Fig. 2's configuration: works {1, 2, 2, 3}, B = 8.
fn fig2_config() -> WorkSwitchConfig {
    WorkSwitchConfig::new(
        8,
        vec![Work::new(1), Work::new(2), Work::new(2), Work::new(3)],
    )
    .unwrap()
}

#[test]
fn duplicated_classes_are_distinct_queues() {
    let cfg = fig2_config();
    let mut runner = WorkRunner::new(cfg, Lwd::new(), 1);
    // Fill both w=2 queues separately; they are independent FIFO queues.
    for _ in 0..3 {
        runner.arrival_to(PortId::new(1)).unwrap();
    }
    runner.arrival_to(PortId::new(2)).unwrap();
    assert_eq!(runner.switch().queue(PortId::new(1)).len(), 3);
    assert_eq!(runner.switch().queue(PortId::new(2)).len(), 1);
    // Both transmit concurrently: each port has its own core.
    runner.transmission();
    runner.end_slot();
    let r = runner.transmission();
    assert_eq!(r.transmitted, 2, "both w=2 ports complete in slot 2");
}

#[test]
fn lwd_distinguishes_duplicated_classes_by_work_not_class() {
    let cfg = fig2_config();
    let mut runner = WorkRunner::new(cfg, Lwd::new(), 1);
    // Queue 1 (w=2): 3 packets, W = 6. Queue 2 (w=2): 1 packet, W = 2.
    for _ in 0..3 {
        runner.arrival_to(PortId::new(1)).unwrap();
    }
    runner.arrival_to(PortId::new(2)).unwrap();
    // Fill the rest of the buffer with w=1 packets: occupancy 8 = B.
    for _ in 0..4 {
        runner.arrival_to(PortId::new(0)).unwrap();
    }
    assert!(runner.switch().is_full());
    // An arrival to the w=3 port evicts from queue 1 (W = 6, the largest),
    // not from its same-work sibling queue 2.
    let d = runner.arrival_to(PortId::new(3)).unwrap();
    assert_eq!(d, Decision::PushOut(PortId::new(1)));
}

#[test]
fn all_policies_run_the_fig2_configuration() {
    let cfg = fig2_config();
    let trace = MmppScenario {
        sources: 8,
        slots: 5_000,
        seed: 71,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    for name in smbm_core::WORK_POLICY_NAMES {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let s = run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        runner.switch().check_invariants().unwrap();
        assert!(s.score > 0, "{name}");
    }
}

#[test]
fn striped_configuration_scales() {
    // 3 classes x 2 copies at simulation scale.
    let cfg = WorkSwitchConfig::striped(3, 2, 24).unwrap();
    let trace = MmppScenario {
        sources: 8,
        slots: 5_000,
        seed: 72,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    let mut runner = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
    run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
    runner.switch().check_invariants().unwrap();
    // Symmetric copies of the same class see symmetric service: per-port
    // throughputs of the two w=1 copies differ by at most a few percent.
    let per_port = runner.switch().transmitted_per_port();
    let (a, b) = (per_port[0] as f64, per_port[1] as f64);
    assert!(
        (a - b).abs() / a.max(b) < 0.1,
        "asymmetric copies: {a} vs {b}"
    );
}
