//! End-to-end regression tests for every theorem's lower-bound replay: the
//! measured ratio must land near the theorem's formula and the ranking of
//! the constructions must hold.

use smbm_sim::{measure_value_construction, measure_work_construction};
use smbm_traffic::adversarial;

/// Asserts `measured` is within `tol` (relative) of `predicted`.
fn assert_close(name: &str, measured: f64, predicted: f64, tol: f64) {
    let rel = (measured - predicted).abs() / predicted;
    assert!(
        rel <= tol,
        "{name}: measured {measured:.3} vs predicted {predicted:.3} (rel err {rel:.3} > {tol})"
    );
}

#[test]
fn theorem1_nhst_matches_kz() {
    let c = adversarial::nhst_lower_bound(8, 192, 5);
    let r = measure_work_construction(&c).unwrap();
    assert_close("Thm1", r.ratio(), r.predicted, 0.02);
}

#[test]
fn theorem1_ratio_grows_with_k() {
    let small = measure_work_construction(&adversarial::nhst_lower_bound(4, 96, 3)).unwrap();
    let large = measure_work_construction(&adversarial::nhst_lower_bound(8, 96, 3)).unwrap();
    assert!(large.ratio() > small.ratio());
}

#[test]
fn theorem2_nest_matches_n() {
    let c = adversarial::nest_lower_bound(8, 48, 5);
    let r = measure_work_construction(&c).unwrap();
    assert_close("Thm2", r.ratio(), 8.0, 0.01);
}

#[test]
fn theorem3_nhdt_matches_formula() {
    let c = adversarial::nhdt_lower_bound(32, 256, 3);
    let r = measure_work_construction(&c).unwrap();
    assert_close("Thm3", r.ratio(), r.predicted, 0.15);
    assert!(r.ratio() > 3.0, "NHDT must degrade badly: {}", r.ratio());
}

#[test]
fn theorem4_lqd_matches_formula() {
    let c = adversarial::lqd_work_lower_bound(36, 144, 4);
    let r = measure_work_construction(&c).unwrap();
    assert_close("Thm4", r.ratio(), r.predicted, 0.15);
}

#[test]
fn theorem5_bpd_matches_harmonic() {
    let c = adversarial::bpd_lower_bound(16, 64, 10_000);
    let r = measure_work_construction(&c).unwrap();
    // H_16 = 3.3807...
    assert_close("Thm5", r.ratio(), 3.3807, 0.02);
}

#[test]
fn theorem6_lwd_near_four_thirds_but_below_two() {
    let c = adversarial::lwd_lower_bound(120, 20);
    let r = measure_work_construction(&c).unwrap();
    assert!(r.ratio() > 1.2, "LWD trace too weak: {}", r.ratio());
    assert!(r.ratio() < 2.0, "Theorem 7 violated: {}", r.ratio());
    assert_close("Thm6", r.ratio(), r.predicted, 0.1);
}

#[test]
fn theorem9_lqd_value_matches_formula() {
    let c = adversarial::lqd_value_lower_bound(64, 128, 10);
    let r = measure_value_construction(&c).unwrap();
    assert_close("Thm9", r.ratio(), r.predicted, 0.1);
}

#[test]
fn theorem10_mvd_matches_half_m() {
    let c = adversarial::mvd_lower_bound(16, 64, 10_000);
    let r = measure_value_construction(&c).unwrap();
    assert_close("Thm10", r.ratio(), 8.5, 0.02);
}

#[test]
fn theorem10_ratio_grows_with_m() {
    let small = measure_value_construction(&adversarial::mvd_lower_bound(4, 64, 2_000)).unwrap();
    let large = measure_value_construction(&adversarial::mvd_lower_bound(12, 64, 2_000)).unwrap();
    assert!(large.ratio() > small.ratio() + 2.0);
}

#[test]
fn theorem11_mrd_near_four_thirds() {
    let c = adversarial::mrd_lower_bound(120, 20);
    let r = measure_value_construction(&c).unwrap();
    assert_close("Thm11", r.ratio(), 4.0 / 3.0, 0.05);
}

#[test]
fn lwd_survives_every_other_works_construction() {
    // The decisive comparison: run LWD on the traces designed to break the
    // *other* work policies; it must stay below 2 on all of them (Theorem 7
    // holds for any arrival sequence).
    let mut constructions = vec![
        adversarial::nhst_lower_bound(8, 96, 5),
        adversarial::nest_lower_bound(8, 48, 5),
        adversarial::nhdt_lower_bound(32, 256, 3),
        adversarial::lqd_work_lower_bound(36, 144, 4),
        adversarial::bpd_lower_bound(16, 64, 5_000),
    ];
    for c in &mut constructions {
        c.target_policy = "LWD";
        let r = measure_work_construction(c).unwrap();
        assert!(r.ratio() < 2.0, "LWD beyond 2 on {}: {}", r.name, r.ratio());
    }
}
