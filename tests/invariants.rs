//! Cross-crate invariant tests: every policy, both models, driven by the
//! full simulator over bursty traffic, must preserve the switch's structural
//! and conservation invariants.

use smbm_core::{value_policy_by_name, work_policy_by_name, ValueRunner, WorkRunner};
use smbm_sim::{run_value, run_work, EngineConfig, FlushMode, FlushPolicy};
use smbm_switch::{ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

fn scenario(seed: u64) -> MmppScenario {
    MmppScenario {
        sources: 16,
        slots: 5_000,
        seed,
        ..Default::default()
    }
}

#[test]
fn work_policies_preserve_invariants_under_bursty_traffic() {
    let cfg = WorkSwitchConfig::contiguous(6, 24).unwrap();
    let trace = scenario(11).work_trace(&cfg, &PortMix::Uniform).unwrap();
    for name in smbm_core::WORK_POLICY_NAMES {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let summary = run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        runner.switch().check_invariants().unwrap_or_else(|e| {
            panic!("{name}: {e}");
        });
        assert!(summary.score > 0, "{name} transmitted nothing");
        assert_eq!(
            runner.switch().occupancy(),
            0,
            "{name}: drain left residents"
        );
        // With a final drain, score equals admitted minus pushed out.
        let c = runner.switch().counters();
        assert_eq!(c.transmitted(), c.admitted() - c.pushed_out(), "{name}");
    }
}

#[test]
fn value_policies_preserve_invariants_under_bursty_traffic() {
    let cfg = ValueSwitchConfig::new(24, 6).unwrap();
    let trace = scenario(12)
        .value_trace(6, &PortMix::Uniform, &ValueMix::Uniform { max: 9 })
        .unwrap();
    for name in smbm_core::VALUE_POLICY_NAMES {
        let policy = value_policy_by_name(name).unwrap();
        let mut runner = ValueRunner::new(cfg, policy, 1);
        let summary = run_value(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        runner.switch().check_invariants().unwrap_or_else(|e| {
            panic!("{name}: {e}");
        });
        assert!(summary.score > 0, "{name} transmitted no value");
        assert_eq!(runner.switch().occupancy(), 0, "{name}");
    }
}

#[test]
fn non_push_out_policies_never_push_out() {
    let cfg = WorkSwitchConfig::contiguous(6, 24).unwrap();
    let trace = scenario(13).work_trace(&cfg, &PortMix::Uniform).unwrap();
    for name in ["NHST", "NEST", "NHDT"] {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        assert_eq!(
            runner.switch().counters().pushed_out(),
            0,
            "{name} pushed out"
        );
    }
    let vcfg = ValueSwitchConfig::new(24, 6).unwrap();
    let vtrace = scenario(13)
        .value_trace(6, &PortMix::Uniform, &ValueMix::Uniform { max: 9 })
        .unwrap();
    for name in ["GREEDY", "NEST-V", "NHST-V"] {
        let policy = value_policy_by_name(name).unwrap();
        let mut runner = ValueRunner::new(vcfg, policy, 1);
        run_value(&mut runner, &vtrace, &EngineConfig::draining()).unwrap();
        assert_eq!(
            runner.switch().counters().pushed_out(),
            0,
            "{name} pushed out"
        );
    }
}

#[test]
fn push_out_policies_are_greedy_with_free_space() {
    // Whenever the buffer has free space, a push-out policy must accept —
    // verified by dropping counters being zero on an uncongested trace.
    let cfg = WorkSwitchConfig::contiguous(6, 512).unwrap();
    let light = MmppScenario {
        sources: 2,
        slots: 3_000,
        seed: 14,
        ..Default::default()
    };
    let trace = light.work_trace(&cfg, &PortMix::Uniform).unwrap();
    for name in ["LQD", "BPD", "BPD1", "LWD"] {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        let c = runner.switch().counters();
        assert_eq!(c.dropped(), 0, "{name} dropped with an uncongested buffer");
        assert_eq!(c.pushed_out(), 0, "{name} pushed out needlessly");
    }
}

#[test]
fn flushouts_preserve_conservation_in_both_modes() {
    let cfg = WorkSwitchConfig::contiguous(4, 16).unwrap();
    let trace = scenario(15).work_trace(&cfg, &PortMix::Uniform).unwrap();
    for mode in [FlushMode::Drain, FlushMode::Drop] {
        let mut runner = WorkRunner::new(cfg.clone(), smbm_core::Lwd::new(), 1);
        let engine = EngineConfig {
            flush: Some(FlushPolicy { period: 500, mode }),
            drain_at_end: true,
        };
        run_work(&mut runner, &trace, &engine).unwrap();
        runner.switch().check_invariants().unwrap();
    }
}

#[test]
fn speedup_never_hurts_throughput() {
    let cfg = WorkSwitchConfig::contiguous(6, 24).unwrap();
    let trace = scenario(16).work_trace(&cfg, &PortMix::Uniform).unwrap();
    let mut last = 0;
    for speedup in [1u32, 2, 4] {
        let mut runner = WorkRunner::new(cfg.clone(), smbm_core::Lwd::new(), speedup);
        let score = run_work(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score;
        assert!(
            score >= last,
            "speedup {speedup} lowered throughput: {score} < {last}"
        );
        last = score;
    }
}

#[test]
fn cycles_respect_capacity() {
    // Total consumed cycles can never exceed slots * ports * speedup.
    let cfg = WorkSwitchConfig::contiguous(4, 16).unwrap();
    let trace = scenario(17).work_trace(&cfg, &PortMix::Uniform).unwrap();
    let speedup = 2;
    let mut runner = WorkRunner::new(cfg.clone(), smbm_core::Lqd::new(), speedup);
    let summary = run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
    let cap = summary.slots * cfg.ports() as u64 * u64::from(speedup);
    assert!(runner.switch().counters().cycles_consumed() <= cap);
}
