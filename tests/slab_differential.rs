//! Differential property tests for the incremental score indices.
//!
//! Every policy that adopted a [`smbm_core::ScoreIndex`] keeps its original
//! full-scan victim selection behind a `scan()` constructor as an oracle.
//! These tests drive the index-forced policy (`indexed()`, since the `new()`
//! default auto-selects scan below 32 ports and would dodge the index at
//! these port counts) and its scan twin through identical random traces —
//! including
//! interleaved transmissions and mid-trace flushes, which force index
//! rebuild/repair paths — and require byte-identical decisions and final
//! queue states. A divergence here means the index no longer reproduces the
//! scan's exact max-and-tie-break semantics.

use proptest::prelude::*;

use smbm_core::{
    AlphaWd, CombinedRunner, Lqd, LqdValue, Lwd, LwdTieBreak, Mrd, Mvd, ValueRunner, WorkRunner,
    Wvd,
};
use smbm_sim::{run_combined, run_value, run_work, EngineConfig};
use smbm_switch::{
    CombinedPacket, PortId, Value, ValuePacket, ValueSwitchConfig, WorkSwitchConfig,
};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

/// Arrival schedule interleaved with transmissions (`i % 3 == 2`) and a
/// mid-trace flush (`i == flush_at`), over a heterogeneous contiguous
/// work switch.
fn work_pattern() -> impl Strategy<Value = (u32, usize, usize, Vec<usize>)> {
    (2u32..=5).prop_flat_map(|ports| {
        (
            Just(ports),
            (ports as usize)..=12usize,
            0usize..80,
            proptest::collection::vec(0usize..ports as usize, 1..80),
        )
    })
}

fn value_pattern() -> impl Strategy<Value = (usize, usize, usize, Vec<(usize, u64)>)> {
    (2usize..=5).prop_flat_map(|ports| {
        (
            Just(ports),
            ports..=12usize,
            0usize..80,
            proptest::collection::vec((0usize..ports, 1u64..=9), 1..80),
        )
    })
}

macro_rules! lockstep_work {
    ($cfg:expr, $indexed:expr, $scan:expr, $flush_at:expr, $pattern:expr) => {{
        let mut a = WorkRunner::new($cfg.clone(), $indexed, 1);
        let mut b = WorkRunner::new($cfg.clone(), $scan, 1);
        for (i, &p) in $pattern.iter().enumerate() {
            let da = a.arrival_to(PortId::new(p)).unwrap();
            let db = b.arrival_to(PortId::new(p)).unwrap();
            prop_assert_eq!(da, db, "diverged at arrival {} (port {})", i, p);
            if i == $flush_at {
                a.flush();
                b.flush();
            } else if i % 3 == 2 {
                a.transmission();
                b.transmission();
                a.end_slot();
                b.end_slot();
            }
        }
        for p in 0..a.switch().ports() {
            prop_assert_eq!(
                a.switch().queue(PortId::new(p)).len(),
                b.switch().queue(PortId::new(p)).len(),
                "queue {} lengths diverged",
                p
            );
        }
    }};
}

macro_rules! lockstep_value {
    ($cfg:expr, $indexed:expr, $scan:expr, $flush_at:expr, $pattern:expr) => {{
        let mut a = ValueRunner::new($cfg, $indexed, 1);
        let mut b = ValueRunner::new($cfg, $scan, 1);
        for (i, &(p, v)) in $pattern.iter().enumerate() {
            let pkt = ValuePacket::new(PortId::new(p), Value::new(v));
            let da = a.arrival(pkt).unwrap();
            let db = b.arrival(pkt).unwrap();
            prop_assert_eq!(
                da,
                db,
                "diverged at arrival {} (port {}, value {})",
                i,
                p,
                v
            );
            if i == $flush_at {
                a.flush();
                b.flush();
            } else if i % 3 == 2 {
                a.transmission();
                b.transmission();
                a.end_slot();
                b.end_slot();
            }
        }
        for p in 0..a.switch().ports() {
            prop_assert_eq!(
                a.switch().queue(PortId::new(p)).len(),
                b.switch().queue(PortId::new(p)).len(),
                "queue {} lengths diverged",
                p
            );
        }
        prop_assert_eq!(a.transmitted_value(), b.transmitted_value());
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn lwd_indexed_matches_scan((ports, buffer, flush_at, pattern) in work_pattern()) {
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        lockstep_work!(cfg, Lwd::indexed(), Lwd::scan(), flush_at, pattern);
    }

    #[test]
    fn lwd_max_len_indexed_matches_scan((ports, buffer, flush_at, pattern) in work_pattern()) {
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        lockstep_work!(
            cfg,
            Lwd::indexed_with_tie_break(LwdTieBreak::MaxLen),
            Lwd::scan_with_tie_break(LwdTieBreak::MaxLen),
            flush_at,
            pattern
        );
    }

    #[test]
    fn lwd_min_work_indexed_matches_scan((ports, buffer, flush_at, pattern) in work_pattern()) {
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        lockstep_work!(
            cfg,
            Lwd::indexed_with_tie_break(LwdTieBreak::MinWork),
            Lwd::scan_with_tie_break(LwdTieBreak::MinWork),
            flush_at,
            pattern
        );
    }

    #[test]
    fn lqd_indexed_matches_scan((ports, buffer, flush_at, pattern) in work_pattern()) {
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        lockstep_work!(cfg, Lqd::indexed(), Lqd::scan(), flush_at, pattern);
    }

    #[test]
    fn alpha_wd_indexed_matches_scan(
        (ports, buffer, flush_at, pattern) in work_pattern(),
        alpha_idx in 0usize..3,
    ) {
        let alpha = [0.25f64, 0.5, 0.75][alpha_idx];
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        lockstep_work!(cfg, AlphaWd::indexed(alpha), AlphaWd::scan(alpha), flush_at, pattern);
    }

    #[test]
    fn lqd_value_indexed_matches_scan((ports, buffer, flush_at, pattern) in value_pattern()) {
        let cfg = ValueSwitchConfig::new(buffer, ports).unwrap();
        lockstep_value!(cfg, LqdValue::indexed(), LqdValue::scan(), flush_at, pattern);
    }

    #[test]
    fn mrd_indexed_matches_scan((ports, buffer, flush_at, pattern) in value_pattern()) {
        let cfg = ValueSwitchConfig::new(buffer, ports).unwrap();
        lockstep_value!(cfg, Mrd::indexed(), Mrd::scan(), flush_at, pattern);
    }

    #[test]
    fn mvd_indexed_matches_scan((ports, buffer, flush_at, pattern) in value_pattern()) {
        let cfg = ValueSwitchConfig::new(buffer, ports).unwrap();
        lockstep_value!(cfg, Mvd::indexed(), Mvd::scan(), flush_at, pattern);
    }

    #[test]
    fn mvd1_indexed_matches_scan((ports, buffer, flush_at, pattern) in value_pattern()) {
        let cfg = ValueSwitchConfig::new(buffer, ports).unwrap();
        lockstep_value!(
            cfg,
            Mvd::indexed_sparing_singletons(),
            Mvd::scan_sparing_singletons(),
            flush_at,
            pattern
        );
    }

    #[test]
    fn wvd_indexed_matches_scan((ports, buffer, flush_at, pattern) in value_pattern()) {
        let cfg = WorkSwitchConfig::contiguous(ports as u32, buffer).unwrap();
        let mut a = CombinedRunner::new(cfg.clone(), Wvd::indexed(), 1);
        let mut b = CombinedRunner::new(cfg.clone(), Wvd::scan(), 1);
        for (i, &(p, v)) in pattern.iter().enumerate() {
            let port = PortId::new(p);
            let pkt = CombinedPacket::new(port, cfg.work(port), Value::new(v));
            let da = a.arrival(pkt).unwrap();
            let db = b.arrival(pkt).unwrap();
            prop_assert_eq!(da, db, "diverged at arrival {} (port {}, value {})", i, p, v);
            if i == flush_at {
                a.flush();
                b.flush();
            } else if i % 3 == 2 {
                a.transmission();
                b.transmission();
                a.end_slot();
                b.end_slot();
            }
        }
        for p in 0..ports {
            prop_assert_eq!(
                a.switch().queue(PortId::new(p)).len(),
                b.switch().queue(PortId::new(p)).len(),
                "queue {} lengths diverged",
                p
            );
        }
        prop_assert_eq!(a.transmitted_value(), b.transmitted_value());
    }
}

/// The slot-loop engine produces identical [`smbm_sim::RunSummary`] values
/// (score, occupancy statistics, slot count) for the indexed and scan
/// variants over a long MMPP trace — the end-to-end form of the lockstep
/// tests above.
#[test]
fn mmpp_work_summaries_match_scan_oracle() {
    let cfg = WorkSwitchConfig::contiguous(6, 32).unwrap();
    let trace = MmppScenario {
        sources: 10,
        slots: 6_000,
        seed: 97,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    let engine = EngineConfig::draining();

    type WorkPair = (
        &'static str,
        Box<dyn smbm_core::WorkPolicy>,
        Box<dyn smbm_core::WorkPolicy>,
    );
    let pairs: Vec<WorkPair> = vec![
        ("LWD", Box::new(Lwd::indexed()), Box::new(Lwd::scan())),
        (
            "LWD-len",
            Box::new(Lwd::indexed_with_tie_break(LwdTieBreak::MaxLen)),
            Box::new(Lwd::scan_with_tie_break(LwdTieBreak::MaxLen)),
        ),
        ("LQD", Box::new(Lqd::indexed()), Box::new(Lqd::scan())),
        (
            "AWD-0.5",
            Box::new(AlphaWd::indexed(0.5)),
            Box::new(AlphaWd::scan(0.5)),
        ),
    ];
    for (name, indexed, scan) in pairs {
        let mut a = WorkRunner::new(cfg.clone(), indexed, 1);
        let mut b = WorkRunner::new(cfg.clone(), scan, 1);
        let sa = run_work(&mut a, &trace, &engine).unwrap();
        let sb = run_work(&mut b, &trace, &engine).unwrap();
        assert_eq!(sa, sb, "{name}: indexed and scan summaries diverged");
    }
}

#[test]
fn mmpp_value_summaries_match_scan_oracle() {
    let cfg = ValueSwitchConfig::new(32, 6).unwrap();
    let trace = MmppScenario {
        sources: 24,
        slots: 6_000,
        seed: 97,
        ..Default::default()
    }
    .value_trace(6, &PortMix::Uniform, &ValueMix::Uniform { max: 12 })
    .unwrap();
    let engine = EngineConfig::draining();

    type ValuePair = (
        &'static str,
        Box<dyn smbm_core::ValuePolicy>,
        Box<dyn smbm_core::ValuePolicy>,
    );
    let pairs: Vec<ValuePair> = vec![
        (
            "LQD",
            Box::new(LqdValue::indexed()),
            Box::new(LqdValue::scan()),
        ),
        ("MRD", Box::new(Mrd::indexed()), Box::new(Mrd::scan())),
        ("MVD", Box::new(Mvd::indexed()), Box::new(Mvd::scan())),
        (
            "MVD1",
            Box::new(Mvd::indexed_sparing_singletons()),
            Box::new(Mvd::scan_sparing_singletons()),
        ),
    ];
    for (name, indexed, scan) in pairs {
        let mut a = ValueRunner::new(cfg, indexed, 1);
        let mut b = ValueRunner::new(cfg, scan, 1);
        let sa = run_value(&mut a, &trace, &engine).unwrap();
        let sb = run_value(&mut b, &trace, &engine).unwrap();
        assert_eq!(sa, sb, "{name}: indexed and scan summaries diverged");
    }
}

#[test]
fn mmpp_combined_summaries_match_scan_oracle() {
    let cfg = WorkSwitchConfig::contiguous(6, 24).unwrap();
    let trace = MmppScenario {
        sources: 16,
        slots: 6_000,
        seed: 97,
        ..Default::default()
    }
    .combined_trace(&cfg, &PortMix::Uniform, &ValueMix::Uniform { max: 9 })
    .unwrap();
    let engine = EngineConfig::draining();

    let mut a = CombinedRunner::new(cfg.clone(), Wvd::indexed(), 1);
    let mut b = CombinedRunner::new(cfg.clone(), Wvd::scan(), 1);
    let sa = run_combined(&mut a, &trace, &engine).unwrap();
    let sb = run_combined(&mut b, &trace, &engine).unwrap();
    assert_eq!(sa, sb, "WVD: indexed and scan summaries diverged");
}
