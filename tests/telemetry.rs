//! Telemetry-plane acceptance: live snapshots must reconcile exactly with
//! the datapath's final report, and shard deaths must leave a post-mortem.
//!
//! The reconciliation runs are fault-free on purpose: supervision recovers a
//! dead incarnation's books by gap accounting on the supervisor thread,
//! which bypasses the observer hooks, so only a clean run promises that the
//! stat cells and the switch counters tell the same story packet-for-packet.

use std::path::PathBuf;
use std::time::Duration;

use smbm_obs::TelemetryConfig;
use smbm_runtime::{run_loadgen, FaultPlan, FlightConfig, LoadgenConfig, Model};

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("smbm-telemetry-{}-{name}", std::process::id()));
    p
}

fn loadgen_config(shards: usize) -> LoadgenConfig {
    LoadgenConfig {
        model: Model::Work,
        policy: "LWD".to_owned(),
        ports: 4,
        buffer: 32,
        shards,
        slots: 2_000,
        sources: 20,
        batch: 64,
        ..LoadgenConfig::default()
    }
}

#[test]
fn four_shard_snapshots_reconcile_with_the_final_report() {
    let stats = temp_path("stats.jsonl");
    let prom = temp_path("prom.txt");
    let mut cfg = loadgen_config(4);
    cfg.telemetry = Some(TelemetryConfig {
        interval: Duration::from_millis(5),
        stats_out: Some(stats.clone()),
        prom_out: Some(prom.clone()),
        ..TelemetryConfig::default()
    });
    let report = run_loadgen(&cfg).unwrap();
    assert!(
        report.runtime.obs_errors.is_empty(),
        "{:?}",
        report.runtime.obs_errors
    );

    let c = report.counters();
    assert!(c.check_conservation(0).is_ok());
    assert!(c.check_value_conservation(0).is_ok());

    let telemetry = report.runtime.telemetry.as_ref().expect("telemetry ran");
    assert!(telemetry.ticks >= 2, "initial + final sample at minimum");
    assert_eq!(telemetry.samples.len() as u64, telemetry.ticks);

    // Per-field monotonicity across the retained time series: cumulative
    // counters never step backwards between samples.
    for pair in telemetry.samples.windows(2) {
        assert!(pair[1].total.arrived >= pair[0].total.arrived);
        assert!(pair[1].total.transmitted >= pair[0].total.transmitted);
        assert!(pair[1].total.slots >= pair[0].total.slots);
    }

    // The final sample is taken after every shard thread has joined, so it
    // must reconcile *exactly* with the report's switch counters — packet
    // and value conservation between the two accounting systems.
    let last = telemetry.last().expect("final sample");
    assert_eq!(last.shards.len(), 4);
    assert_eq!(last.total.arrived, c.arrived());
    assert_eq!(last.total.arrived_value, c.arrived_value());
    assert_eq!(last.total.admitted, c.admitted());
    assert_eq!(last.total.transmitted, c.transmitted());
    assert_eq!(last.total.transmitted_value, c.transmitted_value());
    assert_eq!(last.total.pushed_out, c.pushed_out());
    assert_eq!(
        last.total.dropped_buffer_full + last.total.dropped_policy,
        c.dropped_at_switch()
    );
    assert_eq!(last.total.latency.count(), c.transmitted());
    assert_eq!(last.total.buffer_limit, 4 * 32, "4 shards x B=32");
    assert_eq!(last.total.ports, 4 * 4);

    // The JSONL sink carries the same series: >= 2 periodic snapshots, and
    // the last one holds the exact final totals.
    let jsonl = std::fs::read_to_string(&stats).unwrap();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() >= 2, "expected >= 2 snapshots, got {lines:?}");
    for line in &lines {
        assert!(line.starts_with("{\"type\":\"telemetry\""), "{line}");
    }
    let final_line = lines.last().unwrap();
    assert!(
        final_line.contains(&format!("\"arrived\":{}", c.arrived())),
        "final snapshot must carry the exact cumulative arrival count"
    );
    assert!(final_line.contains(&format!("\"transmitted\":{}", c.transmitted())));

    // The Prometheus dump names every shard.
    let text = std::fs::read_to_string(&prom).unwrap();
    assert!(text.contains("# TYPE smbm_packets_total counter"), "{text}");
    for shard in 0..4 {
        assert!(
            text.contains(&format!(
                "smbm_packets_total{{shard=\"{shard}\",stage=\"arrived\"}}"
            )),
            "{text}"
        );
    }
    assert!(text.contains("smbm_latency_slots{shard=\"0\",quantile=\"0.99\"}"));
    assert!(text.contains("# TYPE smbm_buffer_occupancy gauge"));

    let _ = std::fs::remove_file(stats);
    let _ = std::fs::remove_file(prom);
}

#[test]
fn chaos_panic_leaves_a_flight_dump_naming_the_dead_shard() {
    let flight = temp_path("flight.jsonl");
    let mut cfg = loadgen_config(2);
    cfg.faults = FaultPlan::parse("panic@3#1").unwrap();
    cfg.flight = Some(FlightConfig::new(&flight));
    let report = run_loadgen(&cfg).unwrap();

    assert_eq!(report.runtime.shard_panics, 1);
    assert_eq!(report.runtime.flight_dumps(), 1);
    assert_eq!(report.runtime.shards[1].flight_dumps, 1);
    assert_eq!(report.runtime.shards[0].flight_dumps, 0);
    assert!(report.counters().check_conservation(0).is_ok());

    let dump = std::fs::read_to_string(&flight).unwrap();
    let _ = std::fs::remove_file(&flight);
    let header = dump.lines().next().expect("dump header");
    assert!(header.starts_with("{\"type\":\"flight_dump\""), "{header}");
    assert!(header.contains("\"shard\":1"), "{header}");
    assert!(header.contains("\"reason\":\"panic\""), "{header}");
    // The retained tail is tagged with the dying shard and includes the
    // panic event itself.
    assert!(dump.contains("\"shard\":\"1\""), "{dump}");
    assert!(dump.contains("\"type\":\"shard_panic\""), "{dump}");
}

#[test]
fn exhausted_budget_leaves_panic_and_gave_up_dumps() {
    let flight = temp_path("flight-gave-up.jsonl");
    let mut cfg = loadgen_config(1);
    cfg.faults = FaultPlan::parse("panic@1,panic@2,panic@3").unwrap();
    cfg.restart_budget = 1;
    cfg.flight = Some(FlightConfig::new(&flight));
    let report = run_loadgen(&cfg).unwrap();

    assert_eq!(report.runtime.shards_gave_up(), 1);
    // Two panics within a budget of one: dumps for both deaths plus the
    // give-up marker.
    assert_eq!(report.runtime.flight_dumps(), 3);

    let dump = std::fs::read_to_string(&flight).unwrap();
    let _ = std::fs::remove_file(&flight);
    assert_eq!(dump.matches("\"reason\":\"panic\"").count(), 2);
    assert_eq!(dump.matches("\"reason\":\"gave_up\"").count(), 1);
    assert!(dump.contains("\"type\":\"shard_failed\""));
}
