//! Property-based verification of Theorem 7 (`LWD <= 2-competitive`)
//! against the *exact* clairvoyant optimum on exhaustively searched tiny
//! instances — something the paper could only prove, not measure.

use proptest::prelude::*;

use smbm_core::{exact_work_opt, Lwd, WorkRunner};
use smbm_sim::{run_work, EngineConfig};
use smbm_switch::{PortId, Work, WorkSwitchConfig};
use smbm_traffic::Trace;

/// A tiny random instance: per-port works, buffer size, and a short trace of
/// port indices.
#[derive(Debug, Clone)]
struct TinyInstance {
    works: Vec<u32>,
    buffer: usize,
    slots: Vec<Vec<usize>>,
}

fn tiny_instance() -> impl Strategy<Value = TinyInstance> {
    (2usize..=3)
        .prop_flat_map(|ports| {
            (
                proptest::collection::vec(1u32..=4, ports),
                ports..=5usize,
                proptest::collection::vec(proptest::collection::vec(0usize..ports, 0..=4), 1..=5),
            )
        })
        .prop_map(|(works, buffer, slots)| TinyInstance {
            works,
            buffer,
            slots,
        })
        .prop_filter("at most 18 arrivals keeps exact OPT fast", |t| {
            t.slots.iter().map(Vec::len).sum::<usize>() <= 18
        })
}

fn run_lwd(instance: &TinyInstance) -> (u64, u64) {
    let config = WorkSwitchConfig::new(
        instance.buffer,
        instance.works.iter().map(|&w| Work::new(w)).collect(),
    )
    .expect("generated instances are valid");
    let ports_trace: Vec<Vec<PortId>> = instance
        .slots
        .iter()
        .map(|burst| burst.iter().map(|&p| PortId::new(p)).collect())
        .collect();
    let opt = exact_work_opt(&config, 1, &ports_trace).expect("instance is small");

    let mut trace = Trace::new();
    for burst in &instance.slots {
        trace.push_slot(
            burst
                .iter()
                .map(|&p| {
                    let port = PortId::new(p);
                    smbm_switch::WorkPacket::new(port, config.work(port))
                })
                .collect(),
        );
    }
    let mut runner = WorkRunner::new(config, Lwd::new(), 1);
    let lwd = run_work(&mut runner, &trace, &EngineConfig::draining())
        .expect("LWD never errs")
        .score;
    (opt, lwd)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Theorem 7: on any arrival sequence, OPT transmits at most twice as
    /// many packets as LWD (evaluated at t -> infinity via full drain).
    #[test]
    fn lwd_is_two_competitive_vs_exact_opt(instance in tiny_instance()) {
        let (opt, lwd) = run_lwd(&instance);
        prop_assert!(
            opt <= 2 * lwd,
            "OPT {opt} > 2 * LWD {lwd} on {instance:?}"
        );
    }

    /// Sanity on the same instances: the exact optimum is at least LWD's
    /// score — otherwise the "optimum" search is broken.
    #[test]
    fn exact_opt_dominates_lwd(instance in tiny_instance()) {
        let (opt, lwd) = run_lwd(&instance);
        prop_assert!(opt >= lwd, "exact OPT {opt} below LWD {lwd} on {instance:?}");
    }
}

/// The deterministic Theorem 6 burst, checked against exact OPT at a tiny
/// scale (B = 12): the measured gap must stay within [1, 2].
#[test]
fn theorem6_shape_within_bounds_vs_exact_opt() {
    let works = vec![Work::new(1), Work::new(2), Work::new(3), Work::new(6)];
    let config = WorkSwitchConfig::new(12, works).unwrap();
    // Scaled-down Theorem 6 burst: 12 x [1], 3 x [2], 2 x [3], 1 x [6].
    let mut burst = Vec::new();
    burst.extend(std::iter::repeat_n(PortId::new(0), 12));
    burst.extend(std::iter::repeat_n(PortId::new(1), 3));
    burst.extend(std::iter::repeat_n(PortId::new(2), 2));
    burst.push(PortId::new(3));
    let ports_trace = vec![burst.clone()];
    let opt = exact_work_opt(&config, 1, &ports_trace).unwrap();

    let mut trace = Trace::new();
    trace.push_slot(
        burst
            .iter()
            .map(|&p| smbm_switch::WorkPacket::new(p, config.work(p)))
            .collect(),
    );
    let mut runner = WorkRunner::new(config, Lwd::new(), 1);
    let lwd = run_work(&mut runner, &trace, &EngineConfig::draining())
        .unwrap()
        .score;
    assert!(opt <= 2 * lwd, "opt {opt} lwd {lwd}");
    assert!(opt >= lwd);
}
