//! Integration tests for the observability layer: attaching any observer
//! stack must be a pure read-only tap — run summaries and switch counters
//! stay byte-identical — and the exported JSONL/JSON must be well formed.

use smbm_core::{combined_policy_by_name, CombinedRunner, Lwd, Mrd, ValueRunner, WorkRunner};
use smbm_obs::{DropReason, HistogramRecorder, PhaseProfiler, RingEventLog};
use smbm_sim::{
    run_combined, run_combined_observed, run_value, run_value_observed, run_work,
    run_work_observed, EngineConfig, FlushPolicy,
};
use smbm_switch::{ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

fn engine() -> EngineConfig {
    EngineConfig {
        flush: Some(FlushPolicy::every(64)),
        drain_at_end: true,
    }
}

fn scenario(seed: u64) -> MmppScenario {
    MmppScenario {
        sources: 12,
        slots: 400,
        seed,
        ..Default::default()
    }
}

#[test]
fn work_run_is_unchanged_by_full_observer_stack() {
    let cfg = WorkSwitchConfig::contiguous(4, 16).unwrap();
    let trace = scenario(11).work_trace(&cfg, &PortMix::Uniform).unwrap();

    let mut plain = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
    let baseline = run_work(&mut plain, &trace, &engine()).unwrap();

    let mut log = RingEventLog::new(1 << 12);
    let mut hist = HistogramRecorder::new();
    let mut prof = PhaseProfiler::new();
    let mut observed = WorkRunner::new(cfg, Lwd::new(), 1);
    let summary = run_work_observed(
        &mut observed,
        &trace,
        &engine(),
        &mut (&mut log, (&mut hist, &mut prof)),
    )
    .unwrap();

    assert_eq!(summary, baseline);
    assert_eq!(observed.switch().counters(), plain.switch().counters());
    // The recorder agrees with the engine on the headline numbers.
    assert_eq!(hist.arrivals(), trace.arrivals() as u64);
    assert_eq!(hist.transmitted_packets(), summary.score);
    assert_eq!(
        hist.arrivals(),
        hist.admitted_packets()
            + hist.drop_count(DropReason::BufferFull)
            + hist.drop_count(DropReason::Policy),
        "every offered packet is admitted or dropped"
    );
    assert_eq!(prof.report().slots, summary.slots);
    assert!(log.total_recorded() > 0);
}

#[test]
fn value_run_is_unchanged_by_full_observer_stack() {
    let cfg = ValueSwitchConfig::new(16, 4).unwrap();
    let trace = scenario(12)
        .value_trace(
            cfg.ports(),
            &PortMix::Uniform,
            &ValueMix::Uniform { max: 8 },
        )
        .unwrap();

    let mut plain = ValueRunner::new(cfg, Mrd::new(), 1);
    let baseline = run_value(&mut plain, &trace, &engine()).unwrap();

    let mut log = RingEventLog::new(1 << 12);
    let mut hist = HistogramRecorder::new();
    let mut prof = PhaseProfiler::new();
    let mut observed = ValueRunner::new(cfg, Mrd::new(), 1);
    let summary = run_value_observed(
        &mut observed,
        &trace,
        &engine(),
        &mut (&mut log, (&mut hist, &mut prof)),
    )
    .unwrap();

    assert_eq!(summary, baseline);
    assert_eq!(observed.switch().counters(), plain.switch().counters());
    assert_eq!(hist.arrivals(), trace.arrivals() as u64);
    assert_eq!(hist.transmitted_value(), summary.score);
    assert_eq!(prof.report().slots, summary.slots);
}

#[test]
fn combined_run_is_unchanged_by_full_observer_stack() {
    let cfg = WorkSwitchConfig::contiguous(3, 12).unwrap();
    let trace = scenario(13)
        .combined_trace(&cfg, &PortMix::Uniform, &ValueMix::Uniform { max: 8 })
        .unwrap();

    let policy = combined_policy_by_name("WVD").unwrap();
    let mut plain = CombinedRunner::new(cfg.clone(), policy, 1);
    let baseline = run_combined(&mut plain, &trace, &engine()).unwrap();

    let policy = combined_policy_by_name("WVD").unwrap();
    let mut log = RingEventLog::new(1 << 12);
    let mut hist = HistogramRecorder::new();
    let mut prof = PhaseProfiler::new();
    let mut observed = CombinedRunner::new(cfg, policy, 1);
    let summary = run_combined_observed(
        &mut observed,
        &trace,
        &engine(),
        &mut (&mut log, (&mut hist, &mut prof)),
    )
    .unwrap();

    assert_eq!(summary, baseline);
    assert_eq!(observed.switch().counters(), plain.switch().counters());
    assert_eq!(hist.transmitted_value(), summary.score);
    assert_eq!(prof.report().slots, summary.slots);
}

#[test]
fn event_log_exports_parseable_jsonl() {
    // A small buffer under MMPP load guarantees drops alongside the usual
    // arrival/admission/transmission flow.
    let cfg = WorkSwitchConfig::contiguous(4, 8).unwrap();
    let trace = scenario(14).work_trace(&cfg, &PortMix::Uniform).unwrap();
    let mut log = RingEventLog::new(1 << 14);
    let mut runner = WorkRunner::new(cfg, Lwd::new(), 1);
    run_work_observed(&mut runner, &trace, &engine(), &mut log).unwrap();

    let jsonl = log.to_jsonl_with(&[("policy", "LWD")]);
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(
            line.starts_with("{\"policy\":\"LWD\",\"type\":\""),
            "{line}"
        );
        assert!(line.ends_with('}'), "{line}");
        assert_eq!(line.matches('{').count(), 1, "{line}");
        assert_eq!(line.matches('}').count(), 1, "{line}");
        assert_eq!(line.matches('"').count() % 2, 0, "{line}");
        assert!(line.contains("\"slot\":"), "{line}");
    }
    for kind in ["arrival", "admitted", "dropped", "transmitted", "slot_end"] {
        assert!(
            jsonl.contains(&format!("\"type\":\"{kind}\"")),
            "missing event kind {kind}"
        );
    }
}

#[test]
fn event_ring_bounds_long_runs() {
    let cfg = WorkSwitchConfig::contiguous(4, 16).unwrap();
    let trace = scenario(15).work_trace(&cfg, &PortMix::Uniform).unwrap();
    let mut log = RingEventLog::new(64);
    let mut runner = WorkRunner::new(cfg, Lwd::new(), 1);
    run_work_observed(&mut runner, &trace, &engine(), &mut log).unwrap();

    assert_eq!(log.len(), 64, "the ring stays at capacity");
    assert!(log.total_recorded() > 64, "older events were overwritten");
    // The retained tail still renders one JSON object per line.
    assert_eq!(log.to_jsonl().lines().count(), 64);
}

#[test]
fn histogram_json_reports_ordered_percentiles() {
    let cfg = WorkSwitchConfig::contiguous(4, 16).unwrap();
    let trace = scenario(16).work_trace(&cfg, &PortMix::Uniform).unwrap();
    let mut hist = HistogramRecorder::new();
    let mut runner = WorkRunner::new(cfg, Lwd::new(), 1);
    run_work_observed(&mut runner, &trace, &engine(), &mut hist).unwrap();

    let lat = hist.latency();
    assert!(lat.p50() <= lat.p90());
    assert!(lat.p90() <= lat.p99());
    assert!(lat.p99() <= lat.max());
    let json = hist.to_json();
    for key in [
        "\"arrived\":",
        "\"drops\":{\"buffer_full\":",
        "\"latency\":{",
        "\"occupancy\":{",
        "\"p50\":",
        "\"p99\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
