//! Qualitative regression tests over the Fig. 5 panels at smoke scale: the
//! orderings and trends the paper reports must hold on every run.
//!
//! These guard the *reproduction claims* — if a refactor flips who wins,
//! the suite fails even though every unit test still passes.

use smbm_bench::{run_panel, Panel, PanelScale};
use smbm_sim::Series;

fn ratio_of(series: &[Series], label: &str, x: f64) -> f64 {
    series
        .iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| panic!("{label} missing"))
        .points
        .iter()
        .find(|&&(px, _)| px == x)
        .unwrap_or_else(|| panic!("{label} has no point at {x}"))
        .1
}

fn mean_ratio(series: &[Series], label: &str) -> f64 {
    let s = series
        .iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| panic!("{label} missing"));
    s.points.iter().map(|&(_, y)| y).sum::<f64>() / s.points.len() as f64
}

#[test]
fn work_panel_lwd_is_best_and_bpd_is_worst() {
    let series = run_panel(Panel::new(1).unwrap(), PanelScale::Smoke, 0xB0FFE2).unwrap();
    let lwd = mean_ratio(&series, "LWD");
    for label in ["NHST", "NEST", "NHDT", "LQD", "BPD", "BPD1"] {
        assert!(
            lwd <= mean_ratio(&series, label) + 1e-9,
            "LWD ({lwd}) lost to {label} ({})",
            mean_ratio(&series, label)
        );
    }
    let bpd = mean_ratio(&series, "BPD");
    for label in ["NHST", "NEST", "NHDT", "LQD", "BPD1", "LWD"] {
        assert!(
            bpd >= mean_ratio(&series, label),
            "BPD ({bpd}) beat {label}"
        );
    }
    // BPD1 repairs part of BPD's damage.
    assert!(mean_ratio(&series, "BPD1") < bpd);
}

#[test]
fn work_panel_speedup_drives_ratios_toward_one() {
    let series = run_panel(Panel::new(3).unwrap(), PanelScale::Smoke, 0xB0FFE2).unwrap();
    for s in &series {
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(
            last <= first + 0.02,
            "{}: ratio did not fall with speedup ({first} -> {last})",
            s.label
        );
    }
}

#[test]
fn value_panel_push_out_beats_non_push_out_uniform() {
    let series = run_panel(Panel::new(4).unwrap(), PanelScale::Smoke, 0xB0FFE2).unwrap();
    let greedy = mean_ratio(&series, "GREEDY");
    for label in ["LQD", "MVD", "MVD1", "MRD"] {
        assert!(
            mean_ratio(&series, label) < greedy,
            "{label} did not beat GREEDY"
        );
    }
    // MRD leads (possibly narrowly) in the uniform setting.
    assert!(mean_ratio(&series, "MRD") <= mean_ratio(&series, "LQD") + 0.01);
}

#[test]
fn value_port_panel_mvd_collapses_and_mvd1_recovers() {
    let series = run_panel(Panel::new(7).unwrap(), PanelScale::Smoke, 0xB0FFE2).unwrap();
    // At k = 4 (a congested point at smoke scale) MVD must be far worse
    // than LQD, with MVD1 strictly between them.
    let lqd = ratio_of(&series, "LQD", 4.0);
    let mvd = ratio_of(&series, "MVD", 4.0);
    let mvd1 = ratio_of(&series, "MVD1", 4.0);
    assert!(
        mvd > 1.5 * lqd,
        "MVD ({mvd}) did not collapse vs LQD ({lqd})"
    );
    assert!(mvd1 < mvd, "MVD1 ({mvd1}) did not improve on MVD ({mvd})");
    assert!(mvd1 > lqd, "MVD1 ({mvd1}) should still trail LQD ({lqd})");
}

#[test]
fn buffer_growth_relieves_push_out_policies() {
    let series = run_panel(Panel::new(5).unwrap(), PanelScale::Smoke, 0xB0FFE2).unwrap();
    for label in ["LQD", "MRD", "MVD"] {
        let s = series.iter().find(|s| s.label == label).unwrap();
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(
            last < first,
            "{label}: ratio did not improve with buffer ({first} -> {last})"
        );
    }
}

#[test]
fn every_panel_produces_full_series() {
    for panel in Panel::all() {
        let series = run_panel(panel, PanelScale::Smoke, 0xB0FFE2).unwrap();
        assert!(!series.is_empty(), "panel {} empty", panel.number());
        let n = series[0].points.len();
        for s in &series {
            assert_eq!(
                s.points.len(),
                n,
                "panel {}: ragged series {}",
                panel.number(),
                s.label
            );
            for &(_, y) in &s.points {
                assert!(
                    y.is_finite() && y > 0.0,
                    "panel {}: bad ratio {y} for {}",
                    panel.number(),
                    s.label
                );
            }
        }
    }
}
