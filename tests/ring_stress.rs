//! Multi-thread stress tests for the lock-free SPSC ingress ring.
//!
//! Producer and consumer threads hammer small rings (where every push and
//! pop contends on the wrap-around paths) with randomized batch sizes,
//! randomized scalar/bulk op mixes, and mid-stream closes and panics. The
//! invariant under test is **exact item conservation**: every item the
//! producer hands to the ring is either popped by the consumer, returned
//! to the producer in a `Closed`/`Full` error, or still resident in the
//! ring at the end — no loss, no duplication, no reordering.
//!
//! Seeds are fixed so failures replay; the op *interleaving* still varies
//! with scheduling, which is the point — this is the suite that hunts
//! memory-ordering bugs the single-threaded differential suite cannot see.

use std::thread;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use smbm_runtime::{ring, PushError, TryPop};

/// Items per producer in the soak runs — large enough to wrap a depth-4
/// ring thousands of times.
const STREAM: u64 = 50_000;

/// Producer side of a randomized op-mix stream: pushes `0..STREAM` in
/// order using a seeded mix of scalar and bulk, blocking and non-blocking
/// ops. Returns how many items actually entered the ring (the stream
/// prefix length, since rejected items are always retried in order).
fn drive_producer(tx: smbm_runtime::Producer<u64>, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = 0u64;
    while next < STREAM {
        let batch = rng.random_range(1usize..16).min((STREAM - next) as usize);
        let items: Vec<u64> = (next..next + batch as u64).collect();
        match rng.random_range(0u32..4) {
            // Blocking bulk: all-or-remainder.
            0 => match tx.push_bulk(items) {
                Ok(()) => next += batch as u64,
                Err(PushError::Closed(rest)) => return next + (batch - rest.len()) as u64,
                Err(PushError::Full(_)) => unreachable!("blocking push never reports full"),
            },
            // Non-blocking bulk: the accepted prefix advances the stream.
            1 => match tx.try_push_bulk(items) {
                Ok(()) => next += batch as u64,
                Err(PushError::Full(rest)) => next += (batch - rest.len()) as u64,
                Err(PushError::Closed(rest)) => return next + (batch - rest.len()) as u64,
            },
            // Blocking scalar.
            2 => match tx.push(next) {
                Ok(()) => next += 1,
                Err(PushError::Closed(_)) => return next,
                Err(PushError::Full(_)) => unreachable!("blocking push never reports full"),
            },
            // Non-blocking scalar.
            _ => match tx.try_push(next) {
                Ok(()) => next += 1,
                Err(PushError::Full(_)) => {}
                Err(PushError::Closed(_)) => return next,
            },
        }
    }
    STREAM
}

#[test]
fn randomized_op_mix_conserves_and_orders_the_stream() {
    // Several rounds with different seeds and tiny capacities: every run
    // must deliver an exact prefix 0..accepted in order.
    for seed in 0..4u64 {
        let capacity = [1usize, 2, 3, 7][seed as usize % 4];
        let (tx, rx) = ring(capacity);
        let h = thread::spawn(move || drive_producer(tx, seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut expected = 0u64;
        let mut out: Vec<u64> = Vec::new();
        loop {
            // Random consumer op mix: scalar try_pop, bounded bulk, pop.
            let popped_now: &[u64] = match rng.random_range(0u32..3) {
                0 => match rx.try_pop() {
                    TryPop::Item(v) => {
                        out.clear();
                        out.push(v);
                        &out
                    }
                    TryPop::Empty => {
                        thread::yield_now();
                        continue;
                    }
                    TryPop::Closed => break,
                },
                1 => {
                    out.clear();
                    let r = rx.pop_bulk(&mut out, rng.random_range(1usize..9));
                    if r.popped == 0 {
                        if r.closed {
                            break;
                        }
                        thread::yield_now();
                        continue;
                    }
                    &out
                }
                _ => match rx.pop() {
                    Some(v) => {
                        out.clear();
                        out.push(v);
                        &out
                    }
                    None => break,
                },
            };
            for &v in popped_now {
                assert_eq!(v, expected, "stream out of order (seed {seed})");
                expected += 1;
            }
        }
        let accepted = h.join().unwrap();
        assert_eq!(
            accepted, STREAM,
            "producer finished its stream (seed {seed})"
        );
        assert_eq!(
            expected, STREAM,
            "every accepted item was popped exactly once (seed {seed})"
        );
    }
}

#[test]
fn midstream_consumer_close_loses_nothing_accepted() {
    // The consumer closes at a random point mid-stream. Conservation:
    // items the producer got into the ring == items popped before the
    // close + items still resident after (queued items stay poppable
    // after a consumer close; they are freed with the ring).
    for seed in 10..14u64 {
        let (tx, rx) = ring(4);
        let h = thread::spawn(move || drive_producer(tx, seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let stop_after = rng.random_range(100u64..2_000);
        let mut popped = 0u64;
        let mut out = Vec::new();
        while popped < stop_after {
            out.clear();
            let r = rx.pop_bulk(&mut out, 8);
            for &v in &out {
                assert_eq!(v, popped, "in order up to the close (seed {seed})");
                popped += 1;
            }
            if r.popped == 0 && r.closed {
                break;
            }
        }
        rx.close();
        let accepted = h.join().unwrap();
        // Drain the residue with the same (still valid) consumer handle.
        let mut residue = 0u64;
        while let TryPop::Item(v) = rx.try_pop() {
            assert_eq!(v, popped + residue, "residue continues the stream");
            residue += 1;
        }
        assert_eq!(
            accepted,
            popped + residue,
            "accepted == popped + resident (seed {seed})"
        );
    }
}

#[test]
fn producer_panic_midstream_drains_exactly_the_accepted_prefix() {
    // The producer thread panics after an arbitrary number of pushes; its
    // unwinding drops the handle, which closes the ring. The consumer must
    // drain exactly the accepted prefix and then see a clean end-of-stream
    // — a panic is indistinguishable from a polite close at the ring
    // level, which is what makes producer panics safe runtime-wide.
    for seed in 20..23u64 {
        let (tx, rx) = ring(3);
        let h = thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let die_at = rng.random_range(50u64..1_500);
            let mut next = 0u64;
            loop {
                if next == die_at {
                    panic!("injected producer death at {die_at}");
                }
                let batch = rng.random_range(1usize..8).min((die_at - next) as usize);
                match tx.push_bulk((next..next + batch as u64).collect()) {
                    Ok(()) => next += batch as u64,
                    Err(_) => unreachable!("consumer never closes in this test"),
                }
            }
        });
        let mut expected = 0u64;
        while let Some(v) = rx.pop() {
            assert_eq!(v, expected, "prefix in order (seed {seed})");
            expected += 1;
        }
        assert!(h.join().is_err(), "the producer really panicked");
        assert_eq!(rx.try_pop(), TryPop::Closed, "clean end-of-stream");
        let mut rng = StdRng::seed_from_u64(seed);
        let die_at: u64 = rng.random_range(50u64..1_500);
        assert_eq!(expected, die_at, "drained exactly the accepted prefix");
    }
}

#[test]
fn two_rings_cross_traffic_stays_isolated() {
    // Two independent rings driven concurrently from four threads: traffic
    // on one must never bleed into the other (a regression guard for the
    // shared-state layout — a stray index or waiter crossing rings would
    // scramble both streams).
    let (tx_a, rx_a) = ring(5);
    let (tx_b, rx_b) = ring(2);
    let pa = thread::spawn(move || drive_producer(tx_a, 31));
    let pb = thread::spawn(move || drive_producer(tx_b, 32));
    let drain = |rx: smbm_runtime::Consumer<u64>| {
        let mut expected = 0u64;
        let mut out = Vec::new();
        loop {
            out.clear();
            let r = rx.pop_bulk(&mut out, 16);
            for &v in &out {
                assert_eq!(v, expected);
                expected += 1;
            }
            if r.popped == 0 {
                if r.closed {
                    return expected;
                }
                rx.wait_nonempty(None);
            }
        }
    };
    let ca = thread::spawn(move || drain(rx_a));
    let cb = thread::spawn(move || drain(rx_b));
    assert_eq!(pa.join().unwrap(), STREAM);
    assert_eq!(pb.join().unwrap(), STREAM);
    assert_eq!(ca.join().unwrap(), STREAM);
    assert_eq!(cb.join().unwrap(), STREAM);
}
