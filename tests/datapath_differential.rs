//! Property-based differential tests for the shared datapath.
//!
//! The fixed scenarios in `tests/runtime_differential.rs` pin engine/runtime
//! equality for specific traces; these generalize them: *random* MMPP traces
//! and *random* flush schedules (none, periodic Drop, periodic Drain) driven
//! through the offline engine and a lockstep single-shard runtime must
//! produce bit-identical `Counters`, score, and slot counts. Both drivers
//! are thin shells over `smbm-datapath`'s `SlotMachine`, so any divergence
//! means driver-local logic (ingest, flush keying, drain ordering) broke
//! the shared slot semantics.

use proptest::prelude::*;

use smbm_core::{value_policy_by_name, work_policy_by_name, ValueRunner, WorkRunner};
use smbm_runtime::{
    IngestMode, RuntimeBuilder, RuntimeConfig, Service, ShardConfig, ValueService, VirtualClock,
    WorkService,
};
use smbm_sim::{run_value, run_work, EngineConfig};
use smbm_switch::{Counters, FlushPolicy, ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

/// Runs one lockstep shard over per-slot bursts and returns what the switch
/// counted, plus the shard's objective and slot count.
fn lockstep<S: Service + 'static>(
    factory: impl Fn() -> S + Send + 'static,
    slots: Vec<Vec<S::Packet>>,
    flush: Option<FlushPolicy>,
) -> (Counters, u64, u64) {
    let mut b = RuntimeBuilder::new(RuntimeConfig {
        ring_capacity: 8,
        shard: ShardConfig {
            mode: IngestMode::Lockstep,
            flush,
            drain_at_end: true,
        },
        record_metrics: false,
        ..RuntimeConfig::default()
    });
    let id = b.add_shard(factory);
    b.add_producer(id, move |handle| {
        for burst in slots {
            if !handle.send(burst) {
                break;
            }
        }
    });
    let report = b.run(|_| VirtualClock::new());
    assert_eq!(report.shard_panics, 0);
    let shard = &report.shards[0];
    assert!(shard.error.is_none(), "shard error: {:?}", shard.error);
    assert!(!shard.drain_stalled);
    (shard.counters, shard.score, shard.slots)
}

/// A random flush schedule: none, periodic Drain, or periodic Drop.
fn flush_schedule() -> impl Strategy<Value = Option<FlushPolicy>> {
    prop_oneof![
        Just(None),
        (2u64..40).prop_map(|p| Some(FlushPolicy::every(p))),
        (2u64..40).prop_map(|p| Some(FlushPolicy::every(p).dropping())),
    ]
}

/// Random MMPP shape: ports, buffer (scaled to ports so push-out paths are
/// actually exercised), trace length, seed.
fn shape() -> impl Strategy<Value = (u32, usize, usize, u64)> {
    (2u32..=8).prop_flat_map(|ports| {
        (
            Just(ports),
            (ports as usize * 2)..(ports as usize * 12),
            50usize..300,
            0u64..u64::MAX,
        )
    })
}

proptest! {
    // Each case spawns shard + producer threads; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn work_engine_and_lockstep_runtime_agree(
        (ports, buffer, slots, seed) in shape(),
        flush in flush_schedule(),
        policy_idx in 0usize..smbm_core::WORK_POLICY_NAMES.len(),
    ) {
        let name = smbm_core::WORK_POLICY_NAMES[policy_idx];
        let cfg = WorkSwitchConfig::contiguous(ports, buffer).unwrap();
        let trace = MmppScenario { sources: 10, slots, seed, ..MmppScenario::default() }
            .work_trace(&cfg, &PortMix::Uniform)
            .unwrap();

        let mut runner = WorkRunner::new(cfg.clone(), work_policy_by_name(name).unwrap(), 2);
        let engine = EngineConfig { flush, drain_at_end: true };
        let summary = run_work(&mut runner, &trace, &engine).unwrap();
        let expected = *runner.switch().counters();

        let shard_cfg = cfg.clone();
        let shard_name = name.to_string();
        let (counters, score, slot_count) = lockstep(
            move || {
                let policy = work_policy_by_name(&shard_name).unwrap();
                WorkService::new(WorkRunner::new(shard_cfg.clone(), policy, 2))
            },
            trace.as_slots().to_vec(),
            flush,
        );
        prop_assert_eq!(counters, expected, "counters diverged for {} flush {:?}", name, flush);
        prop_assert_eq!(score, summary.score, "score diverged for {} flush {:?}", name, flush);
        prop_assert_eq!(slot_count, summary.slots, "slots diverged for {} flush {:?}", name, flush);
    }

    #[test]
    fn value_engine_and_lockstep_runtime_agree(
        (ports, buffer, slots, seed) in shape(),
        flush in flush_schedule(),
        policy_idx in 0usize..smbm_core::VALUE_POLICY_NAMES.len(),
    ) {
        let name = smbm_core::VALUE_POLICY_NAMES[policy_idx];
        let cfg = ValueSwitchConfig::new(buffer, ports as usize).unwrap();
        let mix = ValueMix::Uniform { max: 25 };
        let trace = MmppScenario { sources: 10, slots, seed, ..MmppScenario::default() }
            .value_trace(ports as usize, &PortMix::Uniform, &mix)
            .unwrap();

        let mut runner = ValueRunner::new(cfg, value_policy_by_name(name).unwrap(), 2);
        let engine = EngineConfig { flush, drain_at_end: true };
        let summary = run_value(&mut runner, &trace, &engine).unwrap();
        let expected = *runner.switch().counters();

        let shard_name = name.to_string();
        let (counters, score, slot_count) = lockstep(
            move || {
                let policy = value_policy_by_name(&shard_name).unwrap();
                ValueService::new(ValueRunner::new(cfg, policy, 2))
            },
            trace.as_slots().to_vec(),
            flush,
        );
        prop_assert_eq!(counters, expected, "counters diverged for {} flush {:?}", name, flush);
        prop_assert_eq!(score, summary.score, "score diverged for {} flush {:?}", name, flush);
        prop_assert_eq!(slot_count, summary.slots, "slots diverged for {} flush {:?}", name, flush);
    }
}
