//! End-to-end tests of the network plane over loopback UDP: a `netgen`
//! client fleet against a `serve --listen`-equivalent server, library API,
//! ephemeral ports.
//!
//! The invariant under test is *exact reconciliation through a lossy
//! transport*: every frame the clients declared on the wire ends the run
//! as exactly one of admitted, dropped with a reason (`NetDecode`,
//! backpressure, shard failure, or a policy drop at the switch), or
//! orphaned in a dead shard's ring — nothing silently vanishes, even with
//! deliberately corrupted datagrams, lossy ingress rings, or shards
//! panicking mid-run. The SYNC/FIN handshake is what makes the identity
//! exact: a client reports complete only after the server has accounted
//! everything it sent.

use std::thread;
use std::time::Duration;

use smbm_net::{
    run_bound_server, run_netgen, Fanout, NetConfig, NetGenConfig, NetGenReport, NetIngress,
    ServeConfig, ServeReport,
};
use smbm_obs::TelemetryConfig;
use smbm_runtime::{FaultPlan, FlightConfig, Model};

/// Binds ephemeral loopback sockets, serves `serve_cfg` on them, and runs
/// the client fleet against them; returns both reports.
fn run_pair(mut serve_cfg: ServeConfig, mut gen_cfg: NetGenConfig) -> (ServeReport, NetGenReport) {
    serve_cfg.net.read_timeout = Duration::from_millis(5);
    serve_cfg.net.idle_timeout = Duration::from_secs(60);
    let ingress = NetIngress::bind(serve_cfg.net.clone()).expect("bind loopback");
    gen_cfg.targets = ingress.local_addrs().expect("local addrs");
    let server = thread::spawn(move || run_bound_server(&serve_cfg, ingress).expect("serve"));
    let gen = run_netgen(&gen_cfg).expect("netgen config");
    (server.join().expect("server thread"), gen)
}

fn listen(sockets: usize, clients: usize) -> NetConfig {
    NetConfig {
        listen: (0..sockets)
            .map(|_| "127.0.0.1:0".parse().unwrap())
            .collect(),
        expected_clients: clients,
        ..NetConfig::default()
    }
}

/// The reconciliation identity: every declared frame ends the run
/// admitted or dropped with a reason. Packets found orphaned in a dead
/// incarnation's rings are diagnostic, not a terminal disposition — a
/// restart reprocesses them, a give-up drains them as shard-failure drops
/// — so they never appear on the left-hand side.
fn assert_reconciled(report: &ServeReport, gen: &NetGenReport) {
    assert!(gen.all_completed(), "incomplete fleet:\n{gen}");
    let c = report.counters();
    assert_eq!(
        c.arrived(),
        gen.frames_declared(),
        "arrived != declared\n{gen}\n{report}"
    );
    assert_eq!(
        c.admitted()
            + c.dropped_at_switch()
            + c.dropped_backpressure()
            + c.dropped_shard_failure()
            + c.dropped_net_decode(),
        gen.frames_declared(),
        "drop reasons do not partition the declared frames\n{report}"
    );
    c.check_conservation(0).expect("conservation");
}

#[test]
fn four_clients_four_shards_reconcile_exactly() {
    let clients = 4;
    let (bad, truncated) = (5, 3);
    let (report, gen) = run_pair(
        ServeConfig {
            ports: 16,
            buffer: 64,
            shards: 4,
            net: listen(2, clients),
            ..ServeConfig::default()
        },
        NetGenConfig {
            clients,
            ports: 16,
            slots: 400,
            sources: 12,
            batch: 32,
            window: 8,
            bad_frames: bad,
            truncated_datagrams: truncated,
            ..NetGenConfig::default()
        },
    );
    assert_reconciled(&report, &gen);
    let c = report.counters();
    // The injected garbage is charged as NetDecode drops, frame-exact.
    assert_eq!(gen.bad_frames_sent(), (clients * bad) as u64);
    assert_eq!(gen.missing_frames_declared(), (clients * truncated) as u64);
    assert_eq!(
        c.dropped_net_decode(),
        gen.bad_frames_sent() + gen.missing_frames_declared()
    );
    let net = report.net_counts();
    assert_eq!(net.truncations, (clients * truncated) as u64);
    assert_eq!(net.frames, gen.frames_sent());
    assert!(net.datagrams >= gen.datagrams_sent(), "{net:?}");
    // A healthy run: nothing orphaned, no restarts, both sockets served.
    assert_eq!(report.runtime.orphaned_packets(), 0);
    assert_eq!(report.runtime.restarts(), 0);
    assert_eq!(report.local_addrs.len(), 2);
    assert_eq!(report.runtime.shards.len(), 4);
}

#[test]
fn whole_datagram_corruption_reconciles_decode_errors_exactly() {
    // Three corruption shapes at once: frame-level garbage (bad port),
    // declared-but-chopped frames, and whole-datagram garbage (bad magic /
    // truncated header). The first two are declared frames and must be
    // charged as NetDecode drops; the last declares nothing and must show
    // up only in the decode-error tally — reconciliation stays frame-exact
    // either way.
    let clients = 3;
    let (bad, truncated, garbage) = (4, 2, 6);
    let (report, gen) = run_pair(
        ServeConfig {
            ports: 16,
            buffer: 64,
            shards: 2,
            net: listen(1, clients),
            ..ServeConfig::default()
        },
        NetGenConfig {
            clients,
            ports: 16,
            slots: 200,
            sources: 8,
            batch: 32,
            window: 8,
            bad_frames: bad,
            truncated_datagrams: truncated,
            garbage_datagrams: garbage,
            ..NetGenConfig::default()
        },
    );
    assert_reconciled(&report, &gen);
    assert_eq!(gen.garbage_datagrams_sent(), (clients * garbage) as u64);
    let net = report.net_counts();
    // Every corruption the clients put on the wire is a decode error...
    assert_eq!(
        net.decode_errors,
        gen.bad_frames_sent() + gen.missing_frames_declared() + gen.garbage_datagrams_sent(),
        "{net:?}\n{gen}"
    );
    // ...but only *declared* frames can be NetDecode drops: garbage
    // datagrams carry no valid header and charge nothing to the switch.
    assert_eq!(
        report.counters().dropped_net_decode(),
        gen.bad_frames_sent() + gen.missing_frames_declared()
    );
    assert_eq!(net.truncations, (clients * truncated) as u64);
    assert!(
        net.datagrams >= gen.datagrams_sent() + gen.garbage_datagrams_sent(),
        "{net:?}"
    );
}

#[test]
fn value_model_with_hash_fanout_reconciles() {
    let (report, gen) = run_pair(
        ServeConfig {
            model: Model::Value,
            policy: "MRD".into(),
            ports: 8,
            buffer: 32,
            shards: 3,
            net: NetConfig {
                fanout: Fanout::Hash,
                ..listen(1, 2)
            },
            ..ServeConfig::default()
        },
        NetGenConfig {
            model: Model::Value,
            clients: 2,
            ports: 8,
            slots: 300,
            sources: 10,
            max_value: 50,
            batch: 16,
            window: 8,
            bad_frames: 2,
            ..NetGenConfig::default()
        },
    );
    assert_reconciled(&report, &gen);
    assert_eq!(report.counters().dropped_net_decode(), 4);
    assert!(report.score() > 0, "value accumulated:\n{report}");
}

#[test]
fn lossy_rings_still_account_every_frame() {
    // Lossy ingress with a depth-1 ring per (socket, shard): full rings
    // reject batches as backpressure instead of stalling the receive loop,
    // and the rejected frames must still be on the books.
    let (report, gen) = run_pair(
        ServeConfig {
            ports: 8,
            buffer: 32,
            shards: 2,
            ring_capacity: 1,
            net: NetConfig {
                lossy: true,
                batch: 4,
                ..listen(1, 4)
            },
            ..ServeConfig::default()
        },
        NetGenConfig {
            clients: 4,
            ports: 8,
            slots: 400,
            sources: 12,
            batch: 32,
            window: 8,
            ..NetGenConfig::default()
        },
    );
    assert_reconciled(&report, &gen);
    assert_eq!(report.counters().dropped_net_decode(), 0);
}

#[test]
fn sockets_stay_bound_and_serving_across_shard_restarts() {
    let flight_path = std::env::temp_dir().join("smbm_net_e2e_flight.jsonl");
    let _ = std::fs::remove_file(&flight_path);
    let (report, gen) = run_pair(
        ServeConfig {
            ports: 8,
            buffer: 32,
            shards: 2,
            // Shard 0 dies twice mid-run; supervision restarts it while the
            // ingress sockets stay bound and the handshake keeps flowing.
            faults: FaultPlan::parse("panic@3#0,panic@9#0").unwrap(),
            restart_budget: 3,
            // The stat cells of the telemetry plane carry the net ingress
            // tallies; with the plane on, each post-mortem header records
            // how much wire traffic the dead shard's sockets had seen.
            telemetry: Some(TelemetryConfig::default()),
            flight: Some(FlightConfig::new(&flight_path)),
            net: listen(1, 2),
            ..ServeConfig::default()
        },
        NetGenConfig {
            clients: 2,
            ports: 8,
            slots: 400,
            sources: 12,
            batch: 16,
            window: 8,
            ..NetGenConfig::default()
        },
    );
    assert_reconciled(&report, &gen);
    assert_eq!(report.runtime.restarts(), 2, "{report}");
    assert_eq!(report.runtime.shards_gave_up(), 0);
    // Each death dumped a post-mortem whose header carries the net tallies
    // of the sockets that were feeding the shard.
    assert_eq!(report.runtime.flight_dumps(), 2);
    let dump = std::fs::read_to_string(&flight_path).expect("flight dump written");
    let _ = std::fs::remove_file(&flight_path);
    assert!(dump.contains("\"net\":{\"datagrams\":"), "{dump}");
}

#[test]
fn abandoned_shard_charges_shard_failure_drops() {
    // Restart budget zero: the first panic abandons shard 0 and closes its
    // rings. The receive loops must keep serving (and keep answering
    // SYNCs, so the clients finish) while every late frame routed to the
    // dead shard is charged as a shard-failure drop.
    let (report, gen) = run_pair(
        ServeConfig {
            ports: 8,
            buffer: 32,
            shards: 2,
            faults: FaultPlan::parse("panic@2#0").unwrap(),
            restart_budget: 0,
            net: listen(1, 2),
            ..ServeConfig::default()
        },
        NetGenConfig {
            clients: 2,
            ports: 8,
            slots: 400,
            sources: 12,
            batch: 16,
            window: 8,
            ..NetGenConfig::default()
        },
    );
    assert_reconciled(&report, &gen);
    assert_eq!(report.runtime.shards_gave_up(), 1, "{report}");
    let c = report.counters();
    assert!(
        c.dropped_shard_failure() > 0,
        "frames sent after the give-up must be charged:\n{report}"
    );
}

/// The throughput gate: ≥ 4M packets/s end-to-end over loopback, client
/// fleet to admitted-or-accounted. Run with `cargo test -q --test net_e2e
/// -- --ignored`.
#[test]
#[ignore = "perf gate; run explicitly"]
fn loopback_throughput_gate() {
    // Reconciliation still has to be exact at speed, which takes two
    // precautions: one socket per client with a window kept well under the
    // kernel receive buffer (in-flight skbs charge their truesize, several
    // times the 2 KB payload), so the kernel never drops silently; and
    // lossy rings, so ingest is paced by the decode path rather than by
    // shard consumption — full rings become accounted backpressure drops
    // instead of stalling the receive loop into a socket-buffer overflow.
    let clients = 4;
    let (report, gen) = run_pair(
        ServeConfig {
            ports: 64,
            buffer: 256,
            shards: 4,
            ring_capacity: 256,
            net: NetConfig {
                lossy: true,
                ..listen(clients, clients)
            },
            ..ServeConfig::default()
        },
        NetGenConfig {
            clients,
            ports: 64,
            slots: 60_000,
            sources: 50,
            batch: 256,
            window: 16,
            ..NetGenConfig::default()
        },
    );
    assert_reconciled(&report, &gen);
    let rate = gen.frames_per_sec();
    eprintln!("loopback gate: {rate:.0} packets/s end-to-end");
    assert!(
        rate >= 4_000_000.0,
        "end-to-end rate {rate:.0} packets/s below the 4M gate\n{gen}\n{report}"
    );
}
