//! Differential behavior suite for the SPSC ingress rings.
//!
//! One generic test body runs against **both** ring implementations — the
//! lock-free `smbm-spsc` ring the runtime actually uses
//! (`smbm_runtime::ring`) and the original `Mutex`+`Condvar` oracle
//! (`smbm_runtime::reference::ring`) — so the two can never drift apart
//! silently: the suite *is* the observable contract (per-item
//! `Full`/`Closed` outcomes with `Closed` winning ties, drain-on-close,
//! prompt close observation mid-blocking-push, exact bulk split points).
//!
//! On top of the fixed scenarios, a proptest drives both rings through the
//! same randomized sequence of non-blocking operations and demands
//! *identical* outcomes — item for item, error for error, count for count.

use proptest::prelude::*;
use smbm_runtime::{reference, BulkPop, PushError, TryPop};

/// Every behavioral test, written once against the common ring API and
/// instantiated per implementation via the constructor path.
macro_rules! ring_suite {
    ($name:ident, $ring:path) => {
        mod $name {
            use super::*;
            use std::thread;
            use std::time::{Duration, Instant};
            use $ring as mk;

            #[test]
            fn fifo_within_capacity() {
                let (tx, rx) = mk(4);
                tx.push(1).unwrap();
                tx.push(2).unwrap();
                assert_eq!(rx.len(), 2);
                assert!(!rx.is_empty());
                assert_eq!(rx.pop(), Some(1));
                assert_eq!(rx.try_pop(), TryPop::Item(2));
                assert_eq!(rx.try_pop(), TryPop::Empty);
            }

            #[test]
            fn try_push_reports_full() {
                let (tx, rx) = mk(2);
                tx.try_push(1).unwrap();
                tx.try_push(2).unwrap();
                assert_eq!(tx.try_push(3), Err(PushError::Full(3)));
                assert_eq!(rx.pop(), Some(1));
                tx.try_push(3).unwrap();
                assert_eq!(rx.pop(), Some(2));
                assert_eq!(rx.pop(), Some(3));
            }

            #[test]
            fn closed_producer_drains_then_ends() {
                let (tx, rx) = mk(4);
                tx.push(7).unwrap();
                drop(tx);
                assert_eq!(rx.pop(), Some(7));
                assert_eq!(rx.pop(), None);
                assert_eq!(rx.try_pop(), TryPop::Closed);
            }

            #[test]
            fn closed_consumer_rejects_pushes() {
                let (tx, rx) = mk(4);
                drop(rx);
                assert_eq!(tx.push(1), Err(PushError::Closed(1)));
                assert_eq!(tx.try_push(2), Err(PushError::Closed(2)));
            }

            #[test]
            fn blocking_push_wakes_on_pop() {
                let (tx, rx) = mk(1);
                tx.push(1).unwrap();
                let h = thread::spawn(move || tx.push(2));
                thread::sleep(Duration::from_millis(20));
                assert_eq!(rx.pop(), Some(1));
                h.join().unwrap().unwrap();
                assert_eq!(rx.pop(), Some(2));
            }

            #[test]
            fn blocking_pop_wakes_on_close() {
                let (tx, rx) = mk::<u32>(1);
                let h = thread::spawn(move || rx.pop());
                thread::sleep(Duration::from_millis(20));
                drop(tx);
                assert_eq!(h.join().unwrap(), None);
            }

            #[test]
            fn blocked_full_push_fails_when_consumer_drops() {
                let (tx, rx) = mk(1);
                tx.push(1).unwrap();
                let h = thread::spawn(move || tx.push(2));
                thread::sleep(Duration::from_millis(20));
                drop(rx);
                assert_eq!(h.join().unwrap(), Err(PushError::Closed(2)));
            }

            #[test]
            fn blocked_push_observes_close_promptly() {
                // Regression guard for the blocking path's shutdown
                // latency: a push blocked on a full ring must return
                // `Closed` off the close notification itself, not by
                // riding out a full supervision backoff cycle (250 ms
                // cap). The bound is generous against scheduler noise but
                // well under one backoff cycle.
                let (tx, rx) = mk(1);
                tx.push(1).unwrap();
                let h = thread::spawn(move || {
                    let r = tx.push(2);
                    (r, Instant::now())
                });
                // Let the producer actually block on the full ring first.
                thread::sleep(Duration::from_millis(50));
                let closed_at = Instant::now();
                rx.close();
                let (r, returned_at) = h.join().unwrap();
                assert_eq!(r, Err(PushError::Closed(2)));
                let latency = returned_at.saturating_duration_since(closed_at);
                assert!(
                    latency < Duration::from_millis(200),
                    "blocked push took {latency:?} to observe the close"
                );
            }

            #[test]
            fn closed_wins_over_full() {
                // A full ring whose consumer is gone must report `Closed`,
                // never `Full`: shutdown rejections are not load-induced
                // backpressure and must not be tallied as such.
                let (tx, rx) = mk(1);
                tx.try_push(1).unwrap();
                assert_eq!(tx.try_push(2), Err(PushError::Full(2)));
                drop(rx);
                assert_eq!(tx.try_push(3), Err(PushError::Closed(3)));
            }

            #[test]
            fn peek_counts_without_dequeuing() {
                let (tx, rx) = mk(4);
                tx.push(10).unwrap();
                tx.push(20).unwrap();
                let mut seen = Vec::new();
                rx.peek(|&v| seen.push(v));
                assert_eq!(seen, vec![10, 20]);
                assert_eq!(rx.len(), 2);
            }

            #[test]
            #[should_panic(expected = "capacity must be positive")]
            fn zero_capacity_rejected() {
                let _ = mk::<u32>(0);
            }

            #[test]
            fn push_bulk_publishes_whole_slice_fifo() {
                let (tx, rx) = mk(8);
                tx.push_bulk((0..5).collect()).unwrap();
                let mut out = Vec::new();
                let r = rx.pop_bulk(&mut out, 16);
                assert_eq!(out, vec![0, 1, 2, 3, 4]);
                assert_eq!(
                    r,
                    BulkPop {
                        popped: 5,
                        closed: false
                    }
                );
            }

            #[test]
            fn push_bulk_empty_is_a_noop_even_when_full() {
                let (tx, _rx) = mk::<u32>(1);
                tx.push(1).unwrap();
                // Must not block despite the full ring: nothing to push.
                tx.push_bulk(Vec::new()).unwrap();
            }

            #[test]
            fn push_bulk_blocks_across_capacity_and_wakes_on_pops() {
                let (tx, rx) = mk(2);
                let h = thread::spawn(move || tx.push_bulk((0..10).collect()));
                let mut got = Vec::new();
                while got.len() < 10 {
                    if let Some(v) = rx.pop() {
                        got.push(v);
                    }
                }
                h.join().unwrap().unwrap();
                assert_eq!(got, (0..10).collect::<Vec<_>>());
            }

            #[test]
            fn push_bulk_hands_back_unpushed_remainder_on_close() {
                let (tx, rx) = mk(2);
                let h = thread::spawn(move || tx.push_bulk((0..6).collect()));
                thread::sleep(Duration::from_millis(20));
                // Two items fit; close with the producer blocked on the
                // third.
                assert_eq!(rx.pop(), Some(0));
                thread::sleep(Duration::from_millis(20));
                rx.close();
                let err = h.join().unwrap().unwrap_err();
                // Items already published stay published; only the
                // remainder comes back. The consumer freed one slot, so 3
                // entered before the close.
                assert_eq!(err, PushError::Closed(vec![3, 4, 5]));
            }

            #[test]
            fn try_push_bulk_matches_a_scalar_try_push_loop() {
                let (bulk_tx, bulk_rx) = mk(4);
                let (scalar_tx, scalar_rx) = mk(4);
                let items: Vec<u32> = (0..7).collect();
                let rest = match bulk_tx.try_push_bulk(items.clone()) {
                    Err(PushError::Full(rest)) => rest,
                    other => panic!("expected Full, got {other:?}"),
                };
                let mut scalar_rest = Vec::new();
                for item in items {
                    if let Err(PushError::Full(it)) = scalar_tx.try_push(item) {
                        scalar_rest.push(it);
                    }
                }
                assert_eq!(rest, scalar_rest);
                assert_eq!(rest, vec![4, 5, 6]);
                let mut bulk_out = Vec::new();
                bulk_rx.pop_bulk(&mut bulk_out, usize::MAX);
                let mut scalar_out = Vec::new();
                while let TryPop::Item(v) = scalar_rx.try_pop() {
                    scalar_out.push(v);
                }
                assert_eq!(bulk_out, scalar_out);
            }

            #[test]
            fn bulk_closed_wins_over_full() {
                let (tx, rx) = mk(1);
                tx.push(0).unwrap();
                assert_eq!(tx.try_push_bulk(vec![1]), Err(PushError::Full(vec![1])));
                drop(rx);
                assert_eq!(
                    tx.try_push_bulk(vec![1, 2]),
                    Err(PushError::Closed(vec![1, 2]))
                );
                assert_eq!(tx.push_bulk(vec![3]), Err(PushError::Closed(vec![3])));
            }

            #[test]
            fn pop_bulk_respects_max_and_reports_close() {
                let (tx, rx) = mk(8);
                tx.push_bulk(vec![1, 2, 3]).unwrap();
                drop(tx);
                let mut out = Vec::new();
                assert_eq!(
                    rx.pop_bulk(&mut out, 2),
                    BulkPop {
                        popped: 2,
                        closed: true
                    }
                );
                assert_eq!(
                    rx.pop_bulk(&mut out, 2),
                    BulkPop {
                        popped: 1,
                        closed: true
                    }
                );
                assert_eq!(out, vec![1, 2, 3]);
                // Drained and closed: end of stream, as TryPop::Closed.
                assert_eq!(
                    rx.pop_bulk(&mut out, 2),
                    BulkPop {
                        popped: 0,
                        closed: true
                    }
                );
                assert_eq!(rx.try_pop(), TryPop::Closed);
            }

            #[test]
            fn pop_bulk_empty_open_ring_reports_neither() {
                let (_tx, rx) = mk::<u32>(4);
                let mut out = Vec::new();
                assert_eq!(
                    rx.pop_bulk(&mut out, 8),
                    BulkPop {
                        popped: 0,
                        closed: false
                    }
                );
            }

            #[test]
            fn pop_bulk_wakes_a_blocked_producer() {
                let (tx, rx) = mk(1);
                tx.push(1).unwrap();
                let h = thread::spawn(move || tx.push_bulk(vec![2, 3]));
                thread::sleep(Duration::from_millis(20));
                let mut out = Vec::new();
                while out.len() < 3 {
                    rx.pop_bulk(&mut out, 4);
                }
                h.join().unwrap().unwrap();
                assert_eq!(out, vec![1, 2, 3]);
            }

            #[test]
            fn wait_nonempty_times_out_then_observes_data_and_close() {
                let (tx, rx) = mk(4);
                assert!(
                    !rx.wait_nonempty(Some(Duration::from_millis(1))),
                    "empty open ring times out"
                );
                tx.push(1).unwrap();
                assert!(rx.wait_nonempty(Some(Duration::from_millis(1))));
                assert_eq!(rx.pop(), Some(1));
                drop(tx);
                // Closed counts as observable (end-of-stream), not timeout.
                assert!(rx.wait_nonempty(None));
            }

            #[test]
            fn bulk_ops_deliver_the_scalar_sequence_under_concurrency() {
                // Differential soak: the same item stream pushed bulk
                // (varying slice sizes) and drained bulk must arrive
                // exactly as the scalar path would deliver it — in order,
                // nothing lost or duplicated.
                let total: u32 = 10_000;
                let (tx, rx) = mk(7);
                let h = thread::spawn(move || {
                    let mut next = 0u32;
                    let mut size = 1usize;
                    while next < total {
                        let end = (next + size as u32).min(total);
                        tx.push_bulk((next..end).collect()).unwrap();
                        next = end;
                        size = size % 13 + 1;
                    }
                });
                let mut got: Vec<u32> = Vec::new();
                let mut out = Vec::new();
                loop {
                    out.clear();
                    let r = rx.pop_bulk(&mut out, 5);
                    got.extend(&out);
                    if r.popped == 0 && r.closed {
                        break;
                    }
                }
                h.join().unwrap();
                assert_eq!(got, (0..total).collect::<Vec<_>>());
            }
        }
    };
}

ring_suite!(lockfree, smbm_runtime::ring);
ring_suite!(mutex_reference, reference::ring);

// ---------------------------------------------------------------------------
// Randomized differential: drive both implementations through the same
// sequence of non-blocking operations and require identical outcomes.
// ---------------------------------------------------------------------------

/// One non-blocking ring operation. Blocking ops are excluded on purpose:
/// the sequence runs single-threaded, so a blocking push against a full
/// ring would hang — and the blocking paths are just retry loops over
/// these primitives anyway.
#[derive(Debug, Clone)]
enum Op {
    TryPush(u32),
    TryPushBulk(Vec<u32>),
    TryPop,
    PopBulk(usize),
    Len,
    CloseProducer,
    CloseConsumer,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..1000).prop_map(Op::TryPush),
        3 => proptest::collection::vec(0u32..1000, 0..12).prop_map(Op::TryPushBulk),
        4 => Just(Op::TryPop),
        3 => (0usize..12).prop_map(Op::PopBulk),
        1 => Just(Op::Len),
        // Rare: a close freezes the rest of the sequence into the
        // closed-path behaviors, which is interesting but shouldn't
        // dominate.
        1 => Just(Op::CloseProducer),
        1 => Just(Op::CloseConsumer),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Both implementations, same ops, same capacity: every outcome —
    /// pushed/rejected item sets, popped sequences, bulk counts, closed
    /// flags, lengths — must be identical at every step.
    #[test]
    fn lockfree_matches_mutex_oracle(
        capacity in 1usize..9,
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let (ltx, lrx) = smbm_runtime::ring::<u32>(capacity);
        let (mtx, mrx) = reference::ring::<u32>(capacity);
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::TryPush(v) => {
                    prop_assert_eq!(
                        ltx.try_push(*v), mtx.try_push(*v),
                        "try_push diverged at op {}", i
                    );
                }
                Op::TryPushBulk(items) => {
                    prop_assert_eq!(
                        ltx.try_push_bulk(items.clone()),
                        mtx.try_push_bulk(items.clone()),
                        "try_push_bulk diverged at op {}", i
                    );
                }
                Op::TryPop => {
                    prop_assert_eq!(
                        lrx.try_pop(), mrx.try_pop(),
                        "try_pop diverged at op {}", i
                    );
                }
                Op::PopBulk(max) => {
                    let mut lout = Vec::new();
                    let mut mout = Vec::new();
                    let lr = lrx.pop_bulk(&mut lout, *max);
                    let mr = mrx.pop_bulk(&mut mout, *max);
                    prop_assert_eq!(lr, mr, "pop_bulk result diverged at op {}", i);
                    prop_assert_eq!(&lout, &mout, "pop_bulk items diverged at op {}", i);
                }
                Op::Len => {
                    prop_assert_eq!(lrx.len(), mrx.len(), "len diverged at op {}", i);
                    prop_assert_eq!(lrx.is_empty(), mrx.is_empty());
                }
                Op::CloseProducer => {
                    ltx.close();
                    mtx.close();
                }
                Op::CloseConsumer => {
                    lrx.close();
                    mrx.close();
                }
            }
        }
        // Final drain: whatever is left must match item for item.
        let mut lrest = Vec::new();
        let mut mrest = Vec::new();
        let lr = lrx.pop_bulk(&mut lrest, usize::MAX);
        let mr = mrx.pop_bulk(&mut mrest, usize::MAX);
        prop_assert_eq!(lr, mr, "final drain result diverged");
        prop_assert_eq!(lrest, mrest, "final drain items diverged");
    }
}
