//! Differential tests between the live runtime and the offline engine.
//!
//! Under a `VirtualClock` with a lockstep shard fed one burst per trace slot
//! (empty slots included), the runtime executes the exact phase sequence of
//! `smbm_sim`'s `drive` loop — so for every policy the per-run counters
//! (admitted, dropped, pushed-out, transmitted, latency sums) must be
//! *identical*, not merely close. Any divergence means the datapath no
//! longer serves the same policy semantics the paper's simulations measure.

use smbm_core::{
    combined_policy_by_name, value_policy_by_name, work_policy_by_name, CombinedRunner,
    ValueRunner, WorkRunner,
};
use smbm_runtime::{
    CombinedService, Fault, FaultKind, FaultPlan, IngestMode, RuntimeBuilder, RuntimeConfig,
    Service, ShardConfig, SupervisionConfig, ValueService, VirtualClock, WorkService,
};
use smbm_sim::{run_combined, run_value, run_work, EngineConfig, FlushPolicy};
use smbm_switch::{Counters, ValueSwitchConfig, WorkSwitchConfig};
use smbm_traffic::{MmppScenario, PortMix, ValueMix};

/// Runs one lockstep shard over per-slot bursts and returns what the switch
/// counted, plus the shard's objective and slot count.
fn lockstep<S: Service + 'static>(
    factory: impl Fn() -> S + Send + 'static,
    slots: Vec<Vec<S::Packet>>,
    flush: Option<FlushPolicy>,
) -> (Counters, u64, u64) {
    let mut b = RuntimeBuilder::new(RuntimeConfig {
        ring_capacity: 8,
        shard: ShardConfig {
            mode: IngestMode::Lockstep,
            flush,
            drain_at_end: true,
        },
        record_metrics: false,
        ..RuntimeConfig::default()
    });
    let id = b.add_shard(factory);
    b.add_producer(id, move |handle| {
        for burst in slots {
            if !handle.send(burst) {
                break;
            }
        }
    });
    let report = b.run(|_| VirtualClock::new());
    assert_eq!(report.shard_panics, 0);
    assert_eq!(report.producer_panics(), 0);
    assert_eq!(report.lost_packets(), 0);
    let shard = &report.shards[0];
    assert!(shard.error.is_none(), "shard error: {:?}", shard.error);
    assert!(!shard.drain_stalled);
    (shard.counters, shard.score, shard.slots)
}

fn scenario(slots: usize, seed: u64) -> MmppScenario {
    MmppScenario {
        sources: 20,
        slots,
        seed,
        ..MmppScenario::default()
    }
}

#[test]
fn work_runtime_matches_engine_for_every_policy() {
    let cfg = WorkSwitchConfig::contiguous(6, 48).unwrap();
    let trace = scenario(2_000, 42)
        .work_trace(&cfg, &PortMix::Uniform)
        .unwrap();
    for name in smbm_core::WORK_POLICY_NAMES {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 2);
        let summary = run_work(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        let expected = *runner.switch().counters();

        let shard_cfg = cfg.clone();
        let shard_name = name.to_string();
        let (counters, score, slots) = lockstep(
            move || {
                let policy = work_policy_by_name(&shard_name).unwrap();
                WorkService::new(WorkRunner::new(shard_cfg.clone(), policy, 2))
            },
            trace.as_slots().to_vec(),
            None,
        );
        assert_eq!(counters, expected, "counters diverged for policy {name}");
        assert_eq!(score, summary.score, "score diverged for policy {name}");
        assert_eq!(
            slots, summary.slots,
            "slot count diverged for policy {name}"
        );
    }
}

#[test]
fn value_runtime_matches_engine_for_every_policy() {
    let cfg = ValueSwitchConfig::new(48, 6).unwrap();
    let mix = ValueMix::Uniform { max: 20 };
    let trace = scenario(2_000, 7)
        .value_trace(6, &PortMix::Uniform, &mix)
        .unwrap();
    for name in smbm_core::VALUE_POLICY_NAMES {
        let policy = value_policy_by_name(name).unwrap();
        let mut runner = ValueRunner::new(cfg, policy, 2);
        let summary = run_value(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        let expected = *runner.switch().counters();

        let shard_name = name.to_string();
        let (counters, score, slots) = lockstep(
            move || {
                let policy = value_policy_by_name(&shard_name).unwrap();
                ValueService::new(ValueRunner::new(cfg, policy, 2))
            },
            trace.as_slots().to_vec(),
            None,
        );
        assert_eq!(counters, expected, "counters diverged for policy {name}");
        assert_eq!(score, summary.score, "score diverged for policy {name}");
        assert_eq!(
            slots, summary.slots,
            "slot count diverged for policy {name}"
        );
    }
}

#[test]
fn combined_runtime_matches_engine_for_every_policy() {
    let cfg = WorkSwitchConfig::contiguous(5, 40).unwrap();
    let mix = ValueMix::Uniform { max: 16 };
    let trace = scenario(1_500, 11)
        .combined_trace(&cfg, &PortMix::Uniform, &mix)
        .unwrap();
    for name in smbm_core::COMBINED_POLICY_NAMES {
        let policy = combined_policy_by_name(name).unwrap();
        let mut runner = CombinedRunner::new(cfg.clone(), policy, 1);
        let summary = run_combined(&mut runner, &trace, &EngineConfig::draining()).unwrap();
        let expected = *runner.switch().counters();

        let shard_cfg = cfg.clone();
        let shard_name = name.to_string();
        let (counters, score, slots) = lockstep(
            move || {
                let policy = combined_policy_by_name(&shard_name).unwrap();
                CombinedService::new(CombinedRunner::new(shard_cfg.clone(), policy, 1))
            },
            trace.as_slots().to_vec(),
            None,
        );
        assert_eq!(counters, expected, "counters diverged for policy {name}");
        assert_eq!(score, summary.score, "score diverged for policy {name}");
        assert_eq!(
            slots, summary.slots,
            "slot count diverged for policy {name}"
        );
    }
}

/// Rejections by a *closed* ring must surface as producer-side lost packets,
/// never as backpressure: backpressure counts packets the datapath saw and
/// deferred, while a closed ring means the shard is gone and the packets
/// never entered the datapath. A shard that gives up immediately closes its
/// rings, so everything the producer still holds is lost — and the
/// backpressure tally stays exactly zero.
#[test]
fn closed_ring_rejections_are_lost_not_backpressure() {
    use smbm_switch::{PortId, Work, WorkPacket};

    let cfg = WorkSwitchConfig::contiguous(6, 48).unwrap();
    // Every burst is non-empty, so whichever send the closed ring bounces
    // first is guaranteed to register as lost packets.
    let slots: Vec<Vec<WorkPacket>> = (0..50)
        .map(|_| {
            (0..4)
                .map(|_| WorkPacket::new(PortId::new(0), Work::new(1)))
                .collect()
        })
        .collect();

    let mut b = RuntimeBuilder::new(RuntimeConfig {
        ring_capacity: 4,
        shard: ShardConfig {
            mode: IngestMode::Lockstep,
            flush: None,
            drain_at_end: true,
        },
        record_metrics: false,
        faults: FaultPlan::scripted(vec![Fault {
            shard: 0,
            at_slot: 0,
            kind: FaultKind::Panic,
        }]),
        supervision: SupervisionConfig::immediate(0),
        ..RuntimeConfig::default()
    });
    let shard_cfg = cfg.clone();
    let id = b.add_shard(move || {
        let policy = work_policy_by_name("LWD").unwrap();
        WorkService::new(WorkRunner::new(shard_cfg.clone(), policy, 2))
    });
    b.add_producer(id, move |handle| {
        for burst in slots {
            if !handle.send(burst) {
                break;
            }
        }
    });
    let report = b.run(|_| VirtualClock::new());

    let shard = &report.shards[0];
    assert!(shard.gave_up);
    assert!(shard.error.is_none());
    assert!(
        report.lost_packets() > 0,
        "producer must observe the closed ring as lost packets"
    );
    // Nothing the closed ring bounced may masquerade as backpressure.
    let totals = report.counters();
    assert_eq!(totals.dropped_backpressure(), 0);
    // Everything accounted is a shard-failure drop — drained orphans plus
    // producer-side losses — and packet conservation still closes.
    assert_eq!(totals.transmitted(), 0);
    assert_eq!(totals.arrived(), totals.dropped_shard_failure());
    totals.check_conservation(0).unwrap();
}

/// Flushouts are keyed on ingested bursts in the runtime and on trace slots
/// in the engine; with one burst per slot the two schedules must coincide,
/// in both drain and drop modes.
#[test]
fn flush_schedules_match_in_both_modes() {
    let cfg = WorkSwitchConfig::contiguous(6, 48).unwrap();
    let trace = scenario(2_000, 99)
        .work_trace(&cfg, &PortMix::Uniform)
        .unwrap();
    for flush in [FlushPolicy::every(250), FlushPolicy::every(250).dropping()] {
        let policy = work_policy_by_name("LWD").unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let engine = EngineConfig {
            flush: Some(flush),
            drain_at_end: true,
        };
        let summary = run_work(&mut runner, &trace, &engine).unwrap();
        let expected = *runner.switch().counters();

        let shard_cfg = cfg.clone();
        let (counters, score, _) = lockstep(
            move || {
                let policy = work_policy_by_name("LWD").unwrap();
                WorkService::new(WorkRunner::new(shard_cfg.clone(), policy, 1))
            },
            trace.as_slots().to_vec(),
            Some(flush),
        );
        assert_eq!(counters, expected, "counters diverged under {flush:?}");
        assert_eq!(score, summary.score, "score diverged under {flush:?}");
    }
}
