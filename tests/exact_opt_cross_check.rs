//! Cross-checks the memoized exact-OPT solvers against an *independent*
//! naive enumerator that tries every admit/drop bitmask and simulates the
//! resulting schedule directly on the real switch. Two completely different
//! code paths must agree on the optimum for every tiny instance.

use proptest::prelude::*;

use smbm_core::{exact_value_opt, exact_work_opt};
use smbm_switch::{
    PortId, Value, ValuePacket, ValueSwitch, ValueSwitchConfig, Work, WorkSwitch, WorkSwitchConfig,
};

/// Naive work-model optimum: enumerate all admission subsets, simulate each
/// on a real [`WorkSwitch`] with full drain, keep the best feasible outcome.
fn naive_work_opt(config: &WorkSwitchConfig, speedup: u32, trace: &[Vec<PortId>]) -> u64 {
    let arrivals: usize = trace.iter().map(Vec::len).sum();
    assert!(arrivals <= 12, "naive enumeration must stay tiny");
    let mut best = 0;
    'mask: for mask in 0u32..(1 << arrivals) {
        let mut sw = WorkSwitch::new(config.clone());
        let mut idx = 0;
        for burst in trace {
            for &port in burst {
                let pkt = sw.packet_for(port);
                if mask & (1 << idx) != 0 {
                    if sw.is_full() {
                        continue 'mask; // infeasible subset
                    }
                    sw.admit(pkt).expect("space checked");
                } else {
                    sw.reject(pkt).expect("valid packet");
                }
                idx += 1;
            }
            sw.transmit(speedup);
            sw.advance_slot();
        }
        let mut guard = 0;
        while sw.occupancy() > 0 {
            sw.transmit(speedup);
            sw.advance_slot();
            guard += 1;
            assert!(guard < 10_000);
        }
        best = best.max(sw.counters().transmitted());
    }
    best
}

/// Naive value-model optimum, same construction.
fn naive_value_opt(config: &ValueSwitchConfig, speedup: u32, trace: &[Vec<ValuePacket>]) -> u64 {
    let arrivals: usize = trace.iter().map(Vec::len).sum();
    assert!(arrivals <= 12, "naive enumeration must stay tiny");
    let mut best = 0;
    'mask: for mask in 0u32..(1 << arrivals) {
        let mut sw = ValueSwitch::new(*config);
        let mut idx = 0;
        for burst in trace {
            for &pkt in burst {
                if mask & (1 << idx) != 0 {
                    if sw.is_full() {
                        continue 'mask;
                    }
                    sw.admit(pkt).expect("space checked");
                } else {
                    sw.reject(pkt).expect("valid packet");
                }
                idx += 1;
            }
            sw.transmit(speedup);
            sw.advance_slot();
        }
        let mut guard = 0;
        while sw.occupancy() > 0 {
            sw.transmit(speedup);
            sw.advance_slot();
            guard += 1;
            assert!(guard < 10_000);
        }
        best = best.max(sw.counters().transmitted_value());
    }
    best
}

fn micro_work_case() -> impl Strategy<Value = (Vec<u32>, usize, u32, Vec<Vec<usize>>)> {
    (2usize..=3).prop_flat_map(|ports| {
        (
            proptest::collection::vec(1u32..=3, ports),
            ports..=4usize,
            1u32..=2,
            proptest::collection::vec(proptest::collection::vec(0usize..ports, 0..=3), 1..=4)
                .prop_filter("tiny", |s| {
                    let n: usize = s.iter().map(Vec::len).sum();
                    (1..=10).contains(&n)
                }),
        )
    })
}

#[allow(clippy::type_complexity)]
fn micro_value_case() -> impl Strategy<Value = (usize, usize, u32, Vec<Vec<(usize, u64)>>)> {
    (2usize..=3).prop_flat_map(|ports| {
        (
            Just(ports),
            ports..=4usize,
            1u32..=2,
            proptest::collection::vec(
                proptest::collection::vec((0usize..ports, 1u64..=5), 0..=3),
                1..=4,
            )
            .prop_filter("tiny", |s| {
                let n: usize = s.iter().map(Vec::len).sum();
                (1..=10).contains(&n)
            }),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn memoized_and_naive_work_opt_agree(
        (works, buffer, speedup, slots) in micro_work_case()
    ) {
        let cfg = WorkSwitchConfig::new(
            buffer,
            works.iter().map(|&w| Work::new(w)).collect(),
        ).unwrap();
        let trace: Vec<Vec<PortId>> = slots
            .iter()
            .map(|b| b.iter().map(|&p| PortId::new(p)).collect())
            .collect();
        let fast = exact_work_opt(&cfg, speedup, &trace).unwrap();
        let naive = naive_work_opt(&cfg, speedup, &trace);
        prop_assert_eq!(fast, naive, "solvers disagree on {:?}", slots);
    }

    #[test]
    fn memoized_and_naive_value_opt_agree(
        (ports, buffer, speedup, slots) in micro_value_case()
    ) {
        let cfg = ValueSwitchConfig::new(buffer, ports).unwrap();
        let trace: Vec<Vec<ValuePacket>> = slots
            .iter()
            .map(|b| {
                b.iter()
                    .map(|&(p, v)| ValuePacket::new(PortId::new(p), Value::new(v)))
                    .collect()
            })
            .collect();
        let fast = exact_value_opt(&cfg, speedup, &trace).unwrap();
        let naive = naive_value_opt(&cfg, speedup, &trace);
        prop_assert_eq!(fast, naive, "solvers disagree on {:?}", slots);
    }
}

#[test]
fn known_instance_agrees_by_hand() {
    // B = 2, ports w = {1, 3}, one burst [p0, p1, p0], drain.
    // Best: admit everything that fits — p0, p1 fill the buffer; the second
    // p0 cannot fit (p0's first packet transmits only *after* the arrival
    // phase). OPT = 2.
    let cfg = WorkSwitchConfig::new(2, vec![Work::new(1), Work::new(3)]).unwrap();
    let trace = vec![vec![PortId::new(0), PortId::new(1), PortId::new(0)]];
    assert_eq!(exact_work_opt(&cfg, 1, &trace).unwrap(), 2);
    assert_eq!(naive_work_opt(&cfg, 1, &trace), 2);
}
