//! Differential property tests: the degeneration claims the paper makes
//! between policies, checked on random traces.
//!
//! * LWD ≡ LQD when every port has the same processing requirement;
//! * MRD keeps the same queue lengths as LQD when all values are equal;
//! * BPD ≡ BPD1 while no queue is a singleton victim (spot-checked).

use proptest::prelude::*;

use smbm_core::{Lqd, LqdValue, Lwd, Mrd, ValueRunner, WorkRunner};
use smbm_switch::{PortId, Value, ValuePacket, ValueSwitchConfig, WorkSwitchConfig};

fn arrival_pattern() -> impl Strategy<Value = (usize, usize, Vec<usize>)> {
    (2usize..=4).prop_flat_map(|ports| {
        (
            Just(ports),
            ports..=8usize,
            proptest::collection::vec(0usize..ports, 1..60),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// With homogeneous processing, LWD and LQD take identical decisions on
    /// every arrival (the paper: "LWD emulates the well-known LQD policy").
    #[test]
    fn lwd_equals_lqd_on_homogeneous_work((ports, buffer, pattern) in arrival_pattern()) {
        let cfg = WorkSwitchConfig::homogeneous(ports, buffer).unwrap();
        let mut lwd = WorkRunner::new(cfg.clone(), Lwd::new(), 1);
        let mut lqd = WorkRunner::new(cfg, Lqd::new(), 1);
        for (i, &p) in pattern.iter().enumerate() {
            let a = lwd.arrival_to(PortId::new(p)).unwrap();
            let b = lqd.arrival_to(PortId::new(p)).unwrap();
            prop_assert_eq!(a, b, "diverged at arrival {} (port {})", i, p);
            // Interleave transmissions to exercise partially-drained states.
            if i % 3 == 2 {
                lwd.transmission();
                lqd.transmission();
                lwd.end_slot();
                lqd.end_slot();
            }
        }
        for p in 0..lwd.switch().ports() {
            prop_assert_eq!(
                lwd.switch().queue(PortId::new(p)).len(),
                lqd.switch().queue(PortId::new(p)).len()
            );
        }
    }

    /// With unit values, MRD's ratio degenerates to queue length, so its
    /// buffer occupancy profile matches LQD's exactly (evicted unit packets
    /// are interchangeable).
    #[test]
    fn mrd_matches_lqd_lengths_on_unit_values((ports, buffer, pattern) in arrival_pattern()) {
        let cfg = ValueSwitchConfig::new(buffer, ports).unwrap();
        let mut mrd = ValueRunner::new(cfg, Mrd::new(), 1);
        let mut lqd = ValueRunner::new(cfg, LqdValue::new(), 1);
        for (i, &p) in pattern.iter().enumerate() {
            let pkt = ValuePacket::new(PortId::new(p), Value::ONE);
            let a = mrd.arrival(pkt).unwrap();
            let b = lqd.arrival(pkt).unwrap();
            prop_assert_eq!(a.admits(), b.admits(), "diverged at arrival {}", i);
            if i % 3 == 2 {
                mrd.transmission();
                lqd.transmission();
                mrd.end_slot();
                lqd.end_slot();
            }
        }
        for p in 0..ports {
            prop_assert_eq!(
                mrd.switch().queue(PortId::new(p)).len(),
                lqd.switch().queue(PortId::new(p)).len(),
                "queue {} lengths diverged", p
            );
        }
        prop_assert_eq!(mrd.transmitted_value(), lqd.transmitted_value());
    }

    /// Unit-value MRD and LQD transmit identical totals under any pattern —
    /// the basis of the paper's claim that LQD's sqrt(2) lower bound applies
    /// to MRD.
    #[test]
    fn mrd_and_lqd_total_value_equal_on_unit_values(
        (ports, buffer, pattern) in arrival_pattern()
    ) {
        let cfg = ValueSwitchConfig::new(buffer, ports).unwrap();
        let mut mrd = ValueRunner::new(cfg, Mrd::new(), 1);
        let mut lqd = ValueRunner::new(cfg, LqdValue::new(), 1);
        for &p in &pattern {
            let pkt = ValuePacket::new(PortId::new(p), Value::ONE);
            mrd.arrival(pkt).unwrap();
            lqd.arrival(pkt).unwrap();
        }
        // Drain completely.
        for _ in 0..(buffer + 1) {
            mrd.transmission();
            lqd.transmission();
            mrd.end_slot();
            lqd.end_slot();
        }
        prop_assert_eq!(mrd.transmitted_value(), lqd.transmitted_value());
        prop_assert_eq!(mrd.switch().occupancy(), 0);
    }
}
