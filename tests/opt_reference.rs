//! Properties of the optimal references: the PQ surrogate and the exact
//! search must dominate every online policy and behave monotonically.

use proptest::prelude::*;

use smbm_core::{
    exact_value_opt, exact_work_opt, value_policy_by_name, work_policy_by_name, ValuePqOpt,
    ValueRunner, WorkPqOpt, WorkRunner,
};
use smbm_sim::{run_value, run_work, EngineConfig};
use smbm_switch::{PortId, Value, ValuePacket, ValueSwitchConfig, Work, WorkSwitchConfig};
use smbm_traffic::Trace;

fn tiny_work_case() -> impl Strategy<Value = (Vec<u32>, usize, Vec<Vec<usize>>)> {
    (2usize..=3).prop_flat_map(|ports| {
        (
            proptest::collection::vec(1u32..=3, ports),
            ports..=5usize,
            proptest::collection::vec(proptest::collection::vec(0usize..ports, 0..=4), 1..=4)
                .prop_filter("small", |s| s.iter().map(Vec::len).sum::<usize>() <= 14),
        )
    })
}

fn tiny_value_case() -> impl Strategy<Value = (usize, usize, Vec<Vec<(usize, u64)>>)> {
    (2usize..=3).prop_flat_map(|ports| {
        (
            Just(ports),
            ports..=5usize,
            proptest::collection::vec(
                proptest::collection::vec((0usize..ports, 1u64..=6), 0..=4),
                1..=4,
            )
            .prop_filter("small", |s| s.iter().map(Vec::len).sum::<usize>() <= 14),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// The exact work-model optimum dominates every bundled online policy.
    #[test]
    fn exact_work_opt_dominates_all_policies(
        (works, buffer, slots) in tiny_work_case()
    ) {
        let cfg = WorkSwitchConfig::new(
            buffer,
            works.iter().map(|&w| Work::new(w)).collect(),
        ).unwrap();
        let ports_trace: Vec<Vec<PortId>> = slots
            .iter()
            .map(|b| b.iter().map(|&p| PortId::new(p)).collect())
            .collect();
        let opt = exact_work_opt(&cfg, 1, &ports_trace).unwrap();
        let mut trace = Trace::new();
        for burst in &slots {
            trace.push_slot(
                burst
                    .iter()
                    .map(|&p| cfg_packet(&cfg, p))
                    .collect(),
            );
        }
        for name in smbm_core::WORK_POLICY_NAMES {
            let policy = work_policy_by_name(name).unwrap();
            let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
            let score = run_work(&mut runner, &trace, &EngineConfig::draining())
                .unwrap()
                .score;
            prop_assert!(
                score <= opt,
                "{} transmitted {} > exact OPT {}", name, score, opt
            );
        }
    }

    /// The exact value-model optimum dominates every bundled online policy.
    #[test]
    fn exact_value_opt_dominates_all_policies(
        (ports, buffer, slots) in tiny_value_case()
    ) {
        let cfg = ValueSwitchConfig::new(buffer, ports).unwrap();
        let packets: Vec<Vec<ValuePacket>> = slots
            .iter()
            .map(|b| {
                b.iter()
                    .map(|&(p, v)| ValuePacket::new(PortId::new(p), Value::new(v)))
                    .collect()
            })
            .collect();
        let opt = exact_value_opt(&cfg, 1, &packets).unwrap();
        let trace = Trace::from_slots(packets);
        for name in smbm_core::VALUE_POLICY_NAMES {
            let policy = value_policy_by_name(name).unwrap();
            let mut runner = ValueRunner::new(cfg, policy, 1);
            let score = run_value(&mut runner, &trace, &EngineConfig::draining())
                .unwrap()
                .score;
            prop_assert!(
                score <= opt,
                "{} got value {} > exact OPT {}", name, score, opt
            );
        }
    }

    /// The exact optimum is monotone in buffer size and in speedup.
    #[test]
    fn exact_work_opt_monotone_in_resources(
        (works, buffer, slots) in tiny_work_case()
    ) {
        let trace: Vec<Vec<PortId>> = slots
            .iter()
            .map(|b| b.iter().map(|&p| PortId::new(p)).collect())
            .collect();
        let works: Vec<Work> = works.iter().map(|&w| Work::new(w)).collect();
        let small = WorkSwitchConfig::new(buffer, works.clone()).unwrap();
        let big = WorkSwitchConfig::new(buffer + 2, works).unwrap();
        let base = exact_work_opt(&small, 1, &trace).unwrap();
        prop_assert!(exact_work_opt(&big, 1, &trace).unwrap() >= base);
        prop_assert!(exact_work_opt(&small, 2, &trace).unwrap() >= base);
    }
}

fn cfg_packet(cfg: &WorkSwitchConfig, port: usize) -> smbm_switch::WorkPacket {
    let p = PortId::new(port);
    smbm_switch::WorkPacket::new(p, cfg.work(p))
}

#[test]
fn pq_opt_monotone_in_cores() {
    // Deterministic check over a congested burst sequence.
    let mut scores = Vec::new();
    for cores in [1u32, 2, 4, 8] {
        let mut opt = WorkPqOpt::new(16, cores);
        for _ in 0..50 {
            for w in [1u32, 2, 3, 4] {
                for _ in 0..4 {
                    opt.offer(smbm_switch::WorkPacket::new(PortId::new(0), Work::new(w)));
                }
            }
            opt.transmission();
        }
        opt.check_invariants().unwrap();
        scores.push(opt.transmitted());
    }
    assert!(scores.windows(2).all(|w| w[0] <= w[1]), "{scores:?}");
}

#[test]
fn value_pq_opt_collects_top_values() {
    let mut opt = ValuePqOpt::new(4, 2);
    for v in 1..=10u64 {
        opt.offer(ValuePacket::new(PortId::new(0), Value::new(v)));
    }
    // Buffer keeps the top 4: 7, 8, 9, 10.
    let mut total = 0;
    for _ in 0..3 {
        total += opt.transmission();
    }
    assert_eq!(total, 7 + 8 + 9 + 10);
    opt.check_invariants().unwrap();
}

#[test]
fn pq_opt_beats_every_policy_on_bursty_traffic() {
    use smbm_traffic::{MmppScenario, PortMix};
    let cfg = WorkSwitchConfig::contiguous(6, 24).unwrap();
    let trace = MmppScenario {
        sources: 16,
        slots: 4_000,
        seed: 21,
        ..Default::default()
    }
    .work_trace(&cfg, &PortMix::Uniform)
    .unwrap();
    let mut opt = WorkPqOpt::new(24, 6);
    let opt_score = run_work(&mut opt, &trace, &EngineConfig::draining())
        .unwrap()
        .score;
    for name in smbm_core::WORK_POLICY_NAMES {
        let policy = work_policy_by_name(name).unwrap();
        let mut runner = WorkRunner::new(cfg.clone(), policy, 1);
        let score = run_work(&mut runner, &trace, &EngineConfig::draining())
            .unwrap()
            .score;
        assert!(
            score <= opt_score,
            "{name} ({score}) beat the PQ surrogate ({opt_score})"
        );
    }
}
